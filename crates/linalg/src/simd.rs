//! Runtime-dispatched SIMD kernels for the workspace's f64 hot loops.
//!
//! Every flop of the nonzero-based TTMc (and most of the dense linear
//! algebra behind TRSVD) funnels through a handful of tiny inner bodies:
//! axpy-style scaled accumulations, scaled outer products of factor rows,
//! and row-major matrix–vector products.  This module implements each of
//! them three times —
//!
//! * **scalar**: the portable baseline, bit-for-bit the kernels the
//!   workspace has always run;
//! * **AVX2** (`f64×4` lanes via [`core::arch::x86_64`]): *separate*
//!   multiply and add instructions on independent output elements, so every
//!   per-element rounding step is identical to the scalar code and the
//!   results are **bit-identical** — all existing bit-identity contracts
//!   (index-layout equality, executor replay, cross-thread determinism)
//!   hold with the vector path active;
//! * **FMA**: the same lanes with the final multiply+add contracted into
//!   one fused instruction (one rounding instead of two).  Faster, but the
//!   different rounding changes low bits, so it is a separately gated
//!   opt-in ([`KernelIsa::Fma`]) validated by tolerance tests rather than
//!   bitwise ones.
//!
//! Dispatch is by *value*: callers resolve a [`KernelIsa`] once (per plan,
//! per bench cell, …) and pass it down; the kernels branch on it per call,
//! which is perfectly predicted in the hot loops.  Availability is
//! re-checked inside the dispatch (a cached-atomic load via
//! [`is_x86_feature_detected!`]), so even an unresolved or mismatched ISA
//! value can never execute an unsupported instruction — it falls back to
//! scalar.  Off x86_64 the vector arms compile away entirely.
//!
//! The `TUCKER_KERNEL` environment variable (`scalar` | `avx2` | `fma`)
//! overrides every [`KernelIsa::resolve`] call in the process — the forcing
//! knob the equivalence tests and CI use.  Unrecognized values are ignored.
//!
//! Horizontal reductions (`dot`, `nrm2`) are deliberately *not* vectorized
//! in the bit-identical tier: summing lanes reassociates the additions.
//! [`gemv`] sidesteps this by putting four *rows* in a vector — each lane
//! accumulates one row's dot product in exact scalar order.

use std::sync::OnceLock;

/// Which instruction set the f64 kernels run.
///
/// `Auto` (the default) resolves at plan/dispatch time to the fastest
/// *bit-identical* tier the host supports — [`Avx2`](KernelIsa::Avx2) on
/// AVX2-capable x86_64, [`Scalar`](KernelIsa::Scalar) elsewhere — never to
/// [`Fma`](KernelIsa::Fma), whose fused rounding changes result bits and
/// must be requested explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelIsa {
    /// Resolve to the fastest bit-identical ISA the host supports.
    #[default]
    Auto,
    /// Portable scalar kernels — the reference arithmetic.
    Scalar,
    /// AVX2 `f64×4` lanes with separate mul+add: bit-identical to scalar.
    Avx2,
    /// AVX2 lanes with fused multiply–add: faster, different low bits;
    /// opt-in and tolerance-gated rather than bitwise-gated.
    Fma,
}

impl KernelIsa {
    /// Parses a `TUCKER_KERNEL`-style name (case-insensitive); `None` for
    /// anything unrecognized.
    pub fn parse(s: &str) -> Option<KernelIsa> {
        match s.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(KernelIsa::Auto),
            "scalar" => Some(KernelIsa::Scalar),
            "avx2" => Some(KernelIsa::Avx2),
            "fma" => Some(KernelIsa::Fma),
            _ => None,
        }
    }

    /// The forced ISA from the `TUCKER_KERNEL` environment variable, if set
    /// to a recognized value.
    pub fn from_env() -> Option<KernelIsa> {
        std::env::var("TUCKER_KERNEL")
            .ok()
            .and_then(|s| KernelIsa::parse(&s))
    }

    /// Whether this host can execute the ISA.  `Auto` and `Scalar` are
    /// always supported.
    pub fn supported(self) -> bool {
        match self {
            KernelIsa::Auto | KernelIsa::Scalar => true,
            KernelIsa::Avx2 => avx2_available(),
            KernelIsa::Fma => fma_available(),
        }
    }

    /// Resolves a requested ISA to the concrete one the kernels will run:
    /// the `TUCKER_KERNEL` environment override (which forces *every*
    /// resolution in the process, for testing) takes precedence, then the
    /// request is downgraded to what the hardware supports —
    /// `Fma → Avx2 → Scalar`.  `Auto` picks the fastest bit-identical tier
    /// and never resolves to `Fma`.
    ///
    /// The result is always one of `Scalar`, `Avx2`, or `Fma`.
    pub fn resolve(self) -> KernelIsa {
        let requested = KernelIsa::from_env().unwrap_or(self);
        match requested {
            KernelIsa::Scalar => KernelIsa::Scalar,
            KernelIsa::Auto => {
                if avx2_available() {
                    KernelIsa::Avx2
                } else {
                    KernelIsa::Scalar
                }
            }
            KernelIsa::Avx2 => {
                if avx2_available() {
                    KernelIsa::Avx2
                } else {
                    KernelIsa::Scalar
                }
            }
            KernelIsa::Fma => {
                if fma_available() {
                    KernelIsa::Fma
                } else if avx2_available() {
                    KernelIsa::Avx2
                } else {
                    KernelIsa::Scalar
                }
            }
        }
    }

    /// The process-wide resolved default: [`KernelIsa::Auto`] resolved once
    /// (environment override included) and cached.  Entry points that take
    /// no explicit ISA — the plain BLAS wrappers, the one-shot kron helpers
    /// — run at this tier, which is bit-identical to scalar by
    /// construction.
    pub fn resolved_default() -> KernelIsa {
        static RESOLVED: OnceLock<KernelIsa> = OnceLock::new();
        *RESOLVED.get_or_init(|| KernelIsa::Auto.resolve())
    }

    /// Stable lowercase name, matching what [`KernelIsa::parse`] accepts.
    pub fn as_str(self) -> &'static str {
        match self {
            KernelIsa::Auto => "auto",
            KernelIsa::Scalar => "scalar",
            KernelIsa::Avx2 => "avx2",
            KernelIsa::Fma => "fma",
        }
    }
}

impl std::fmt::Display for KernelIsa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// An `f64` buffer whose first element sits on a 64-byte boundary.
///
/// The vector kernels use unaligned load/store instructions, which run at
/// full speed **when the address happens to be 32-byte aligned** and pay a
/// cache-line-split penalty (roughly half throughput on the accumulate
/// stream) when it does not.  `Vec<f64>` only guarantees 8-byte alignment,
/// so long-lived accumulators that feed [`axpy`]/[`scaled_outer2`]/
/// [`scaled_outer3`] — per-thread TTMc scratch, microbenchmark buffers —
/// should come from here instead.  Alignment never changes results: every
/// kernel computes the same bits at any address, only slower.
///
/// Implemented safely by over-allocating one cache line and offsetting;
/// dereferences to `[f64]` of exactly the requested length.
pub struct AlignedVec {
    buf: Vec<f64>,
    off: usize,
    len: usize,
}

impl AlignedVec {
    /// A zero-filled buffer of `len` elements starting on a 64-byte
    /// boundary.
    pub fn zeros(len: usize) -> AlignedVec {
        let buf = vec![0.0f64; len + 8];
        let off = (buf.as_ptr() as usize).wrapping_neg() % 64 / std::mem::size_of::<f64>();
        AlignedVec { buf, off, len }
    }
}

impl std::ops::Deref for AlignedVec {
    type Target = [f64];
    fn deref(&self) -> &[f64] {
        &self.buf[self.off..self.off + self.len]
    }
}

impl std::ops::DerefMut for AlignedVec {
    fn deref_mut(&mut self) -> &mut [f64] {
        &mut self.buf[self.off..self.off + self.len]
    }
}

/// Whether the host executes AVX2 (always `false` off x86_64).  The
/// detection result is cached by the standard library, so calling this in a
/// hot dispatch is a relaxed atomic load.
#[cfg(target_arch = "x86_64")]
pub fn avx2_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

/// Whether the host executes AVX2 (always `false` off x86_64).
#[cfg(not(target_arch = "x86_64"))]
pub fn avx2_available() -> bool {
    false
}

/// Whether the host executes 256-bit FMA (requires AVX2 too; always
/// `false` off x86_64).
#[cfg(target_arch = "x86_64")]
pub fn fma_available() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

/// Whether the host executes 256-bit FMA (always `false` off x86_64).
#[cfg(not(target_arch = "x86_64"))]
pub fn fma_available() -> bool {
    false
}

// ---------------------------------------------------------------------------
// Dispatchers
// ---------------------------------------------------------------------------

/// `y += alpha · x`, element-wise.  Bit-identical across `Scalar` and
/// `Avx2`; `Fma` fuses each element's multiply+add (including the scalar
/// remainder, via [`f64::mul_add`]).
///
/// Callers should pass a [resolved](KernelIsa::resolve) ISA; an unresolved
/// `Auto` runs scalar, and a vector ISA the host lacks falls back to
/// scalar.
#[inline]
pub fn axpy(isa: KernelIsa, alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    #[cfg(target_arch = "x86_64")]
    match isa {
        KernelIsa::Avx2 if avx2_available() => {
            // SAFETY: AVX2 availability was just checked.
            unsafe { x86::axpy_avx2(alpha, x, y) };
            return;
        }
        KernelIsa::Fma if fma_available() => {
            // SAFETY: AVX2+FMA availability was just checked.
            unsafe { x86::axpy_fma(alpha, x, y) };
            return;
        }
        _ => {}
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = isa;
    axpy_scalar(alpha, x, y);
}

/// `x *= alpha`, element-wise.  A pure multiply has one rounding however it
/// is issued, so all three ISAs produce identical bits; `Fma` runs the AVX2
/// body.
#[inline]
pub fn scal(isa: KernelIsa, alpha: f64, x: &mut [f64]) {
    #[cfg(target_arch = "x86_64")]
    if matches!(isa, KernelIsa::Avx2 | KernelIsa::Fma) && avx2_available() {
        // SAFETY: AVX2 availability was just checked.
        unsafe { x86::scal_avx2(alpha, x) };
        return;
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = isa;
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// `out += x · (u ⊗ v)`: the per-nonzero body of the order-3 TTMc kernels
/// and of `sptensor::kron::accumulate_scaled_kron`'s two-factor branch.
/// `out` is row-major `u.len() × v.len()`.
///
/// Contract (all ISAs): the coefficient `x·uᵢ` is hoisted per `u` entry and
/// a **zero coefficient skips its row entirely**.  The skip is bit-
/// transparent for finite inputs — adding `+0.0·vⱼ = ±0.0` to an
/// accumulator can only change it when the accumulator is `-0.0` (yielding
/// `+0.0`), and accumulators here start at `+0.0` and can never round to
/// `-0.0` — but it would drop NaNs from `±∞`/NaN factor entries, which the
/// arity-3 kernels (no skip) would propagate.  See
/// [`scaled_outer3`] for the asymmetry and the regression test in
/// `tests/simd_kernels.rs`.
#[inline]
pub fn scaled_outer2(isa: KernelIsa, x: f64, u: &[f64], v: &[f64], out: &mut [f64]) {
    debug_assert_eq!(out.len(), u.len() * v.len());
    #[cfg(target_arch = "x86_64")]
    match isa {
        KernelIsa::Avx2 if avx2_available() => {
            // SAFETY: AVX2 availability was just checked.
            unsafe { x86::scaled_outer2_avx2(x, u, v, out) };
            return;
        }
        KernelIsa::Fma if fma_available() => {
            // SAFETY: AVX2+FMA availability was just checked.
            unsafe { x86::scaled_outer2_fma(x, u, v, out) };
            return;
        }
        _ => {}
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = isa;
    scaled_outer2_scalar(x, u, v, out);
}

/// `out += x · (u ⊗ v ⊗ w)`: the per-nonzero body of the order-4 TTMc
/// kernels.  `out` is row-major `u.len()·v.len() × w.len()`.
///
/// Contract (all ISAs): each element computes `t = (uᵢ·vⱼ)·w_k` and then
/// `acc += x·t` — `x` multiplies **last**, and there is **no**
/// zero-coefficient skip, matching the materialized
/// `kron_rows` + axpy path (`sptensor::kron`) bit for bit (the kron
/// expansion seeds with `1.0·uᵢ`, which is bitwise `uᵢ`).  Under `Fma`
/// only the final `acc += x·t` is fused — `t` stays a plain multiply — so
/// the fused and materialized arity-3 paths remain bit-identical *to each
/// other* within the Fma tier.
#[inline]
pub fn scaled_outer3(isa: KernelIsa, x: f64, u: &[f64], v: &[f64], w: &[f64], out: &mut [f64]) {
    debug_assert_eq!(out.len(), u.len() * v.len() * w.len());
    #[cfg(target_arch = "x86_64")]
    match isa {
        KernelIsa::Avx2 if avx2_available() => {
            // SAFETY: AVX2 availability was just checked.
            unsafe { x86::scaled_outer3_avx2(x, u, v, w, out) };
            return;
        }
        KernelIsa::Fma if fma_available() => {
            // SAFETY: AVX2+FMA availability was just checked.
            unsafe { x86::scaled_outer3_fma(x, u, v, w, out) };
            return;
        }
        _ => {}
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = isa;
    scaled_outer3_scalar(x, u, v, w, out);
}

/// Row-major matrix–vector product `y = A·x` (`A` is `rows × cols`, stored
/// row-major in `a`).
///
/// The vector tiers put four *rows* in a vector — lane `l` accumulates row
/// `r+l`'s dot product sequentially over the columns, starting from `0.0`,
/// which is exactly the scalar `dot` order — so `Avx2` stays bit-identical
/// to `Scalar` without any horizontal reduction.  `Fma` fuses each lane's
/// multiply+add.
#[inline]
pub fn gemv(isa: KernelIsa, a: &[f64], rows: usize, cols: usize, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(a.len(), rows * cols);
    debug_assert_eq!(x.len(), cols);
    debug_assert_eq!(y.len(), rows);
    #[cfg(target_arch = "x86_64")]
    match isa {
        KernelIsa::Avx2 if avx2_available() => {
            // SAFETY: AVX2 availability was just checked.
            unsafe { x86::gemv_avx2(a, rows, cols, x, y) };
            return;
        }
        KernelIsa::Fma if fma_available() => {
            // SAFETY: AVX2+FMA availability was just checked.
            unsafe { x86::gemv_fma(a, rows, cols, x, y) };
            return;
        }
        _ => {}
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = isa;
    for r in 0..rows {
        y[r] = dot_scalar(&a[r * cols..(r + 1) * cols], x);
    }
}

// ---------------------------------------------------------------------------
// Scalar reference bodies
// ---------------------------------------------------------------------------

/// The scalar axpy the workspace has always run: one multiply and one add
/// per element, in index order.
fn axpy_scalar(alpha: f64, x: &[f64], y: &mut [f64]) {
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// Sequential-fold dot product, matching `Iterator::sum`'s order (the body
/// of `linalg::blas::dot`).
fn dot_scalar(x: &[f64], y: &[f64]) -> f64 {
    x.iter().zip(y.iter()).map(|(a, b)| a * b).sum()
}

/// Scalar [`scaled_outer2`]: coefficient hoisted per `u` entry with the
/// zero skip, inner axpy unrolled by four (per-element ops unchanged, so
/// the unroll is bit-identical to a plain loop).
fn scaled_outer2_scalar(x: f64, u: &[f64], v: &[f64], out: &mut [f64]) {
    let rb = v.len();
    for (i, &ui) in u.iter().enumerate() {
        let coeff = x * ui;
        if coeff == 0.0 {
            continue;
        }
        let acc = &mut out[i * rb..(i + 1) * rb];
        let mut acc_chunks = acc.chunks_exact_mut(4);
        let mut v_chunks = v.chunks_exact(4);
        for (a4, v4) in acc_chunks.by_ref().zip(v_chunks.by_ref()) {
            a4[0] += coeff * v4[0];
            a4[1] += coeff * v4[1];
            a4[2] += coeff * v4[2];
            a4[3] += coeff * v4[3];
        }
        for (a1, &v1) in acc_chunks
            .into_remainder()
            .iter_mut()
            .zip(v_chunks.remainder())
        {
            *a1 += coeff * v1;
        }
    }
}

/// Scalar [`scaled_outer3`]: `t = (uᵢ·vⱼ)·w_k; acc += x·t` per element,
/// unrolled by four, no zero skip.
fn scaled_outer3_scalar(x: f64, u: &[f64], v: &[f64], w: &[f64], out: &mut [f64]) {
    let rc = w.len();
    let mut acc_rows = out.chunks_exact_mut(rc.max(1));
    for &ui in u.iter() {
        for &vj in v.iter() {
            let p = ui * vj;
            let acc = acc_rows.next().expect("output length is |u|·|v|·|w|");
            let mut acc4 = acc.chunks_exact_mut(4);
            let mut w4 = w.chunks_exact(4);
            for (a4, c4) in (&mut acc4).zip(&mut w4) {
                a4[0] += x * (p * c4[0]);
                a4[1] += x * (p * c4[1]);
                a4[2] += x * (p * c4[2]);
                a4[3] += x * (p * c4[3]);
            }
            for (a1, &w1) in acc4.into_remainder().iter_mut().zip(w4.remainder()) {
                *a1 += x * (p * w1);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// AVX2 / FMA bodies (x86_64 only)
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    use core::arch::x86_64::*;

    /// AVX2 axpy: 8-wide (two 4-lane vectors for ILP) + 4-wide + scalar
    /// remainder.  Separate `mul`/`add` per element — bit-identical to the
    /// scalar body.
    ///
    /// # Safety
    /// Caller must ensure the host supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy_avx2(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = x.len().min(y.len());
        let a = _mm256_set1_pd(alpha);
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        let mut i = 0usize;
        while i + 8 <= n {
            let x0 = _mm256_loadu_pd(xp.add(i));
            let x1 = _mm256_loadu_pd(xp.add(i + 4));
            let y0 = _mm256_loadu_pd(yp.add(i));
            let y1 = _mm256_loadu_pd(yp.add(i + 4));
            _mm256_storeu_pd(yp.add(i), _mm256_add_pd(y0, _mm256_mul_pd(a, x0)));
            _mm256_storeu_pd(yp.add(i + 4), _mm256_add_pd(y1, _mm256_mul_pd(a, x1)));
            i += 8;
        }
        if i + 4 <= n {
            let x0 = _mm256_loadu_pd(xp.add(i));
            let y0 = _mm256_loadu_pd(yp.add(i));
            _mm256_storeu_pd(yp.add(i), _mm256_add_pd(y0, _mm256_mul_pd(a, x0)));
            i += 4;
        }
        while i < n {
            *yp.add(i) += alpha * *xp.add(i);
            i += 1;
        }
    }

    /// FMA axpy: each element is one fused multiply–add (the scalar
    /// remainder uses [`f64::mul_add`] so every element rounds once).
    ///
    /// # Safety
    /// Caller must ensure the host supports AVX2 and FMA.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn axpy_fma(alpha: f64, x: &[f64], y: &mut [f64]) {
        let n = x.len().min(y.len());
        let a = _mm256_set1_pd(alpha);
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        let mut i = 0usize;
        while i + 8 <= n {
            let x0 = _mm256_loadu_pd(xp.add(i));
            let x1 = _mm256_loadu_pd(xp.add(i + 4));
            let y0 = _mm256_loadu_pd(yp.add(i));
            let y1 = _mm256_loadu_pd(yp.add(i + 4));
            _mm256_storeu_pd(yp.add(i), _mm256_fmadd_pd(a, x0, y0));
            _mm256_storeu_pd(yp.add(i + 4), _mm256_fmadd_pd(a, x1, y1));
            i += 8;
        }
        if i + 4 <= n {
            let x0 = _mm256_loadu_pd(xp.add(i));
            let y0 = _mm256_loadu_pd(yp.add(i));
            _mm256_storeu_pd(yp.add(i), _mm256_fmadd_pd(a, x0, y0));
            i += 4;
        }
        while i < n {
            *yp.add(i) = alpha.mul_add(*xp.add(i), *yp.add(i));
            i += 1;
        }
    }

    /// AVX2 scal: pure multiplies (one rounding each), so the bits match
    /// scalar regardless of lane width.
    ///
    /// # Safety
    /// Caller must ensure the host supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn scal_avx2(alpha: f64, x: &mut [f64]) {
        let n = x.len();
        let a = _mm256_set1_pd(alpha);
        let xp = x.as_mut_ptr();
        let mut i = 0usize;
        while i + 4 <= n {
            let v = _mm256_loadu_pd(xp.add(i));
            _mm256_storeu_pd(xp.add(i), _mm256_mul_pd(a, v));
            i += 4;
        }
        while i < n {
            *xp.add(i) *= alpha;
            i += 1;
        }
    }

    /// AVX2 [`scaled_outer2`](super::scaled_outer2): the zero skip of the
    /// scalar body, with surviving rows processed **two at a time** so one
    /// `v` load feeds both rows' multiply+adds (2.5 memory ops per element
    /// instead of 3, and twice the independent accumulate chains in
    /// flight).  Pairing never changes bits: every output element is still
    /// read once, updated with the identical single mul+add, and written
    /// once — only the order across *disjoint* rows differs.  A pair with
    /// a zero coefficient falls back to two single rows so the per-row
    /// skip contract is preserved exactly.
    ///
    /// (An alignment-peeling variant — scalar elements until the
    /// accumulator row reaches a 32-byte boundary — measured *slower* at
    /// the rank-sized rows this kernel actually sees: the peel spends up
    /// to 3 of 8–16 elements to save line-split loads it no longer
    /// issues.  Callers get the same effect for free by allocating
    /// accumulators with [`AlignedVec`](super::AlignedVec).)
    ///
    /// # Safety
    /// Caller must ensure the host supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn scaled_outer2_avx2(x: f64, u: &[f64], v: &[f64], out: &mut [f64]) {
        let rb = v.len();
        let ra = u.len();
        debug_assert!(out.len() >= ra * rb);
        let vp = v.as_ptr();
        let op = out.as_mut_ptr();
        let mut i = 0usize;
        while i + 2 <= ra {
            let c0 = x * *u.get_unchecked(i);
            let c1 = x * *u.get_unchecked(i + 1);
            if c0 == 0.0 || c1 == 0.0 {
                if c0 != 0.0 {
                    axpy_avx2(c0, v, &mut out[i * rb..(i + 1) * rb]);
                }
                if c1 != 0.0 {
                    axpy_avx2(c1, v, &mut out[(i + 1) * rb..(i + 2) * rb]);
                }
                i += 2;
                continue;
            }
            let r0 = op.add(i * rb);
            let r1 = r0.add(rb);
            let cv0 = _mm256_set1_pd(c0);
            let cv1 = _mm256_set1_pd(c1);
            let mut k = 0usize;
            while k + 4 <= rb {
                let vk = _mm256_loadu_pd(vp.add(k));
                let a0 = _mm256_loadu_pd(r0.add(k));
                let a1 = _mm256_loadu_pd(r1.add(k));
                _mm256_storeu_pd(r0.add(k), _mm256_add_pd(a0, _mm256_mul_pd(cv0, vk)));
                _mm256_storeu_pd(r1.add(k), _mm256_add_pd(a1, _mm256_mul_pd(cv1, vk)));
                k += 4;
            }
            while k < rb {
                let vk = *vp.add(k);
                *r0.add(k) += c0 * vk;
                *r1.add(k) += c1 * vk;
                k += 1;
            }
            i += 2;
        }
        if i < ra {
            let c = x * *u.get_unchecked(i);
            if c != 0.0 {
                axpy_avx2(c, v, &mut out[i * rb..(i + 1) * rb]);
            }
        }
    }

    /// FMA [`scaled_outer2`](super::scaled_outer2): the paired-row AVX2
    /// structure with each element's multiply+add fused to one rounding.
    ///
    /// # Safety
    /// Caller must ensure the host supports AVX2 and FMA.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn scaled_outer2_fma(x: f64, u: &[f64], v: &[f64], out: &mut [f64]) {
        let rb = v.len();
        let ra = u.len();
        debug_assert!(out.len() >= ra * rb);
        let vp = v.as_ptr();
        let op = out.as_mut_ptr();
        let mut i = 0usize;
        while i + 2 <= ra {
            let c0 = x * *u.get_unchecked(i);
            let c1 = x * *u.get_unchecked(i + 1);
            if c0 == 0.0 || c1 == 0.0 {
                if c0 != 0.0 {
                    axpy_fma(c0, v, &mut out[i * rb..(i + 1) * rb]);
                }
                if c1 != 0.0 {
                    axpy_fma(c1, v, &mut out[(i + 1) * rb..(i + 2) * rb]);
                }
                i += 2;
                continue;
            }
            let r0 = op.add(i * rb);
            let r1 = r0.add(rb);
            let cv0 = _mm256_set1_pd(c0);
            let cv1 = _mm256_set1_pd(c1);
            let mut k = 0usize;
            while k + 4 <= rb {
                let vk = _mm256_loadu_pd(vp.add(k));
                let a0 = _mm256_loadu_pd(r0.add(k));
                let a1 = _mm256_loadu_pd(r1.add(k));
                _mm256_storeu_pd(r0.add(k), _mm256_fmadd_pd(cv0, vk, a0));
                _mm256_storeu_pd(r1.add(k), _mm256_fmadd_pd(cv1, vk, a1));
                k += 4;
            }
            while k < rb {
                let vk = *vp.add(k);
                *r0.add(k) = c0.mul_add(vk, *r0.add(k));
                *r1.add(k) = c1.mul_add(vk, *r1.add(k));
                k += 1;
            }
            i += 2;
        }
        if i < ra {
            let c = x * *u.get_unchecked(i);
            if c != 0.0 {
                axpy_fma(c, v, &mut out[i * rb..(i + 1) * rb]);
            }
        }
    }

    /// AVX2 [`scaled_outer3`](super::scaled_outer3): per element
    /// `t = mul(p, w); acc = add(acc, mul(x, t))` — the identical two
    /// roundings of the scalar body.
    ///
    /// # Safety
    /// Caller must ensure the host supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn scaled_outer3_avx2(x: f64, u: &[f64], v: &[f64], w: &[f64], out: &mut [f64]) {
        let rc = w.len();
        let xv = _mm256_set1_pd(x);
        let wp = w.as_ptr();
        let op = out.as_mut_ptr();
        let mut base = 0usize;
        for &ui in u.iter() {
            for &vj in v.iter() {
                let p = ui * vj;
                let pv = _mm256_set1_pd(p);
                let mut k = 0usize;
                while k + 8 <= rc {
                    let t0 = _mm256_mul_pd(pv, _mm256_loadu_pd(wp.add(k)));
                    let t1 = _mm256_mul_pd(pv, _mm256_loadu_pd(wp.add(k + 4)));
                    let a0 = _mm256_loadu_pd(op.add(base + k));
                    let a1 = _mm256_loadu_pd(op.add(base + k + 4));
                    _mm256_storeu_pd(op.add(base + k), _mm256_add_pd(a0, _mm256_mul_pd(xv, t0)));
                    _mm256_storeu_pd(
                        op.add(base + k + 4),
                        _mm256_add_pd(a1, _mm256_mul_pd(xv, t1)),
                    );
                    k += 8;
                }
                if k + 4 <= rc {
                    let t0 = _mm256_mul_pd(pv, _mm256_loadu_pd(wp.add(k)));
                    let a0 = _mm256_loadu_pd(op.add(base + k));
                    _mm256_storeu_pd(op.add(base + k), _mm256_add_pd(a0, _mm256_mul_pd(xv, t0)));
                    k += 4;
                }
                while k < rc {
                    *op.add(base + k) += x * (p * *wp.add(k));
                    k += 1;
                }
                base += rc;
            }
        }
    }

    /// FMA [`scaled_outer3`](super::scaled_outer3): `t = p·w` stays a plain
    /// multiply and only the final `acc += x·t` is fused, so this matches
    /// the materialized kron+axpy path bit for bit *within* the Fma tier.
    ///
    /// # Safety
    /// Caller must ensure the host supports AVX2 and FMA.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn scaled_outer3_fma(x: f64, u: &[f64], v: &[f64], w: &[f64], out: &mut [f64]) {
        let rc = w.len();
        let xv = _mm256_set1_pd(x);
        let wp = w.as_ptr();
        let op = out.as_mut_ptr();
        let mut base = 0usize;
        for &ui in u.iter() {
            for &vj in v.iter() {
                let p = ui * vj;
                let pv = _mm256_set1_pd(p);
                let mut k = 0usize;
                while k + 8 <= rc {
                    let t0 = _mm256_mul_pd(pv, _mm256_loadu_pd(wp.add(k)));
                    let t1 = _mm256_mul_pd(pv, _mm256_loadu_pd(wp.add(k + 4)));
                    let a0 = _mm256_loadu_pd(op.add(base + k));
                    let a1 = _mm256_loadu_pd(op.add(base + k + 4));
                    _mm256_storeu_pd(op.add(base + k), _mm256_fmadd_pd(xv, t0, a0));
                    _mm256_storeu_pd(op.add(base + k + 4), _mm256_fmadd_pd(xv, t1, a1));
                    k += 8;
                }
                if k + 4 <= rc {
                    let t0 = _mm256_mul_pd(pv, _mm256_loadu_pd(wp.add(k)));
                    let a0 = _mm256_loadu_pd(op.add(base + k));
                    _mm256_storeu_pd(op.add(base + k), _mm256_fmadd_pd(xv, t0, a0));
                    k += 4;
                }
                while k < rc {
                    *op.add(base + k) = x.mul_add(p * *wp.add(k), *op.add(base + k));
                    k += 1;
                }
                base += rc;
            }
        }
    }

    /// AVX2 [`gemv`](super::gemv): four rows per vector, one lane per row's
    /// accumulator, sequential over the columns — each lane performs the
    /// scalar dot's exact rounding sequence, so no horizontal reduction and
    /// no reassociation.  The strided column loads (`_mm256_set_pd`) cost
    /// more per element than a contiguous load, but the scalar dot is
    /// latency-bound on its single add chain; four chains per vector still
    /// win.
    ///
    /// # Safety
    /// Caller must ensure the host supports AVX2.
    #[target_feature(enable = "avx2")]
    pub unsafe fn gemv_avx2(a: &[f64], rows: usize, cols: usize, x: &[f64], y: &mut [f64]) {
        let ap = a.as_ptr();
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        let mut r = 0usize;
        while r + 4 <= rows {
            let r0 = ap.add(r * cols);
            let r1 = r0.add(cols);
            let r2 = r1.add(cols);
            let r3 = r2.add(cols);
            let mut acc = _mm256_setzero_pd();
            for k in 0..cols {
                let av = _mm256_set_pd(*r3.add(k), *r2.add(k), *r1.add(k), *r0.add(k));
                let xv = _mm256_set1_pd(*xp.add(k));
                acc = _mm256_add_pd(acc, _mm256_mul_pd(av, xv));
            }
            _mm256_storeu_pd(yp.add(r), acc);
            r += 4;
        }
        while r < rows {
            let row = std::slice::from_raw_parts(ap.add(r * cols), cols);
            *yp.add(r) = super::dot_scalar(row, x);
            r += 1;
        }
    }

    /// FMA [`gemv`](super::gemv): each lane's step is one fused
    /// multiply–add; remainder rows use a [`f64::mul_add`] fold so every
    /// row rounds once per column.
    ///
    /// # Safety
    /// Caller must ensure the host supports AVX2 and FMA.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn gemv_fma(a: &[f64], rows: usize, cols: usize, x: &[f64], y: &mut [f64]) {
        let ap = a.as_ptr();
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        let mut r = 0usize;
        while r + 4 <= rows {
            let r0 = ap.add(r * cols);
            let r1 = r0.add(cols);
            let r2 = r1.add(cols);
            let r3 = r2.add(cols);
            let mut acc = _mm256_setzero_pd();
            for k in 0..cols {
                let av = _mm256_set_pd(*r3.add(k), *r2.add(k), *r1.add(k), *r0.add(k));
                let xv = _mm256_set1_pd(*xp.add(k));
                acc = _mm256_fmadd_pd(av, xv, acc);
            }
            _mm256_storeu_pd(yp.add(r), acc);
            r += 4;
        }
        while r < rows {
            let mut acc = 0.0f64;
            let rp = ap.add(r * cols);
            for k in 0..cols {
                acc = (*rp.add(k)).mul_add(*xp.add(k), acc);
            }
            *yp.add(r) = acc;
            r += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random data without pulling in the rand shim.
    fn lcg_data(n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        (0..n)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
            })
            .collect()
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn aligned_vec_is_64_byte_aligned_at_any_length() {
        for len in [0usize, 1, 3, 4, 7, 8, 9, 64, 1000] {
            let mut v = AlignedVec::zeros(len);
            assert_eq!(v.len(), len);
            assert_eq!(v.as_ptr() as usize % 64, 0, "len={len}");
            assert!(v.iter().all(|&x| x == 0.0));
            if len > 0 {
                v[len - 1] = 2.5;
                assert_eq!(v[len - 1], 2.5);
            }
        }
    }

    #[test]
    fn parse_accepts_the_env_names() {
        assert_eq!(KernelIsa::parse("scalar"), Some(KernelIsa::Scalar));
        assert_eq!(KernelIsa::parse("AVX2"), Some(KernelIsa::Avx2));
        assert_eq!(KernelIsa::parse(" fma "), Some(KernelIsa::Fma));
        assert_eq!(KernelIsa::parse("auto"), Some(KernelIsa::Auto));
        assert_eq!(KernelIsa::parse("sse9"), None);
        assert_eq!(KernelIsa::parse(""), None);
    }

    #[test]
    fn as_str_round_trips_through_parse() {
        for isa in [
            KernelIsa::Auto,
            KernelIsa::Scalar,
            KernelIsa::Avx2,
            KernelIsa::Fma,
        ] {
            assert_eq!(KernelIsa::parse(isa.as_str()), Some(isa));
            assert_eq!(format!("{isa}"), isa.as_str());
        }
    }

    #[test]
    fn resolve_is_concrete_and_hardware_safe() {
        for isa in [
            KernelIsa::Auto,
            KernelIsa::Scalar,
            KernelIsa::Avx2,
            KernelIsa::Fma,
        ] {
            let r = isa.resolve();
            assert_ne!(r, KernelIsa::Auto, "resolve must settle Auto");
            assert!(r.supported(), "resolved ISA must run on this host: {r:?}");
        }
        // Auto never opts into the non-bit-identical tier by itself; an
        // env override can redirect every resolution, so only assert this
        // when the forcing knob is not set to fma.
        if KernelIsa::from_env() != Some(KernelIsa::Fma) {
            assert_ne!(KernelIsa::Auto.resolve(), KernelIsa::Fma);
        }
        assert_eq!(KernelIsa::resolved_default(), KernelIsa::resolved_default());
    }

    #[test]
    fn axpy_avx2_is_bit_identical_to_scalar_at_every_remainder() {
        if !KernelIsa::Avx2.supported() {
            return;
        }
        for n in 0..=35 {
            let x = lcg_data(n, 7 + n as u64);
            let y0 = lcg_data(n, 1000 + n as u64);
            let mut ys = y0.clone();
            let mut yv = y0.clone();
            axpy(KernelIsa::Scalar, 0.37, &x, &mut ys);
            axpy(KernelIsa::Avx2, 0.37, &x, &mut yv);
            assert_eq!(bits(&ys), bits(&yv), "axpy mismatch at n={n}");
        }
    }

    #[test]
    fn scal_is_bit_identical_across_all_isas() {
        for n in 0..=19 {
            let x0 = lcg_data(n, 33 + n as u64);
            let mut xs = x0.clone();
            scal(KernelIsa::Scalar, -1.75, &mut xs);
            for isa in [KernelIsa::Avx2, KernelIsa::Fma] {
                if !isa.supported() {
                    continue;
                }
                let mut xv = x0.clone();
                scal(isa, -1.75, &mut xv);
                assert_eq!(bits(&xs), bits(&xv), "scal mismatch at n={n} isa={isa}");
            }
        }
    }

    #[test]
    fn scaled_outer2_avx2_is_bit_identical_to_scalar() {
        if !KernelIsa::Avx2.supported() {
            return;
        }
        for (du, dv) in [(1, 1), (2, 3), (3, 5), (4, 8), (5, 7), (8, 9), (6, 16)] {
            let u = lcg_data(du, 3 * dv as u64 + 1);
            let v = lcg_data(dv, 5 * du as u64 + 2);
            let base = lcg_data(du * dv, 17);
            let mut os = base.clone();
            let mut ov = base.clone();
            scaled_outer2(KernelIsa::Scalar, 1.23, &u, &v, &mut os);
            scaled_outer2(KernelIsa::Avx2, 1.23, &u, &v, &mut ov);
            assert_eq!(bits(&os), bits(&ov), "outer2 mismatch at {du}x{dv}");
        }
    }

    #[test]
    fn scaled_outer3_avx2_is_bit_identical_to_scalar() {
        if !KernelIsa::Avx2.supported() {
            return;
        }
        for (du, dv, dw) in [(1, 1, 1), (2, 2, 3), (3, 2, 5), (2, 3, 8), (3, 3, 9)] {
            let u = lcg_data(du, 11);
            let v = lcg_data(dv, 13);
            let w = lcg_data(dw, 19);
            let base = lcg_data(du * dv * dw, 23);
            let mut os = base.clone();
            let mut ov = base.clone();
            scaled_outer3(KernelIsa::Scalar, -0.81, &u, &v, &w, &mut os);
            scaled_outer3(KernelIsa::Avx2, -0.81, &u, &v, &w, &mut ov);
            assert_eq!(bits(&os), bits(&ov), "outer3 mismatch at {du}x{dv}x{dw}");
        }
    }

    #[test]
    fn gemv_avx2_is_bit_identical_to_scalar() {
        if !KernelIsa::Avx2.supported() {
            return;
        }
        for (rows, cols) in [(1, 1), (3, 4), (4, 7), (5, 5), (8, 3), (9, 16), (13, 11)] {
            let a = lcg_data(rows * cols, rows as u64 * 31 + cols as u64);
            let x = lcg_data(cols, 41);
            let mut ys = vec![0.0; rows];
            let mut yv = vec![0.0; rows];
            gemv(KernelIsa::Scalar, &a, rows, cols, &x, &mut ys);
            gemv(KernelIsa::Avx2, &a, rows, cols, &x, &mut yv);
            assert_eq!(bits(&ys), bits(&yv), "gemv mismatch at {rows}x{cols}");
        }
    }

    #[test]
    fn fma_tier_agrees_within_tolerance() {
        if !KernelIsa::Fma.supported() {
            return;
        }
        let n = 37;
        let x = lcg_data(n, 3);
        let y0 = lcg_data(n, 5);
        let mut ys = y0.clone();
        let mut yf = y0.clone();
        axpy(KernelIsa::Scalar, 0.9, &x, &mut ys);
        axpy(KernelIsa::Fma, 0.9, &x, &mut yf);
        for (s, f) in ys.iter().zip(yf.iter()) {
            assert!((s - f).abs() <= 1e-12, "fma drifted: {s} vs {f}");
        }
    }

    #[test]
    fn fma_outer3_matches_fma_materialized_kron_bitwise() {
        // The within-tier identity the Fma mode's correctness rests on:
        // fusing ONLY the final mul+add keeps the fused outer3 body equal
        // to "materialize p·w, then fused axpy".
        if !KernelIsa::Fma.supported() {
            return;
        }
        let (du, dv, dw) = (3, 2, 7);
        let u = lcg_data(du, 91);
        let v = lcg_data(dv, 92);
        let w = lcg_data(dw, 93);
        let base = lcg_data(du * dv * dw, 94);
        let x = 0.61;
        let mut fused = base.clone();
        scaled_outer3(KernelIsa::Fma, x, &u, &v, &w, &mut fused);
        let mut materialized = base.clone();
        let mut scratch = vec![0.0; dw];
        for (i, &ui) in u.iter().enumerate() {
            for (j, &vj) in v.iter().enumerate() {
                let p = ui * vj;
                for (s, &wk) in scratch.iter_mut().zip(w.iter()) {
                    *s = p * wk;
                }
                let row = (i * dv + j) * dw;
                axpy(
                    KernelIsa::Fma,
                    x,
                    &scratch,
                    &mut materialized[row..row + dw],
                );
            }
        }
        assert_eq!(bits(&fused), bits(&materialized));
    }
}
