//! Dense singular value decomposition for small matrices.
//!
//! The matrix-free TRSVD solvers reduce the large matricized TTMc result to
//! a small projected problem (a bidiagonal matrix for Lanczos, a
//! `k × ncols` sketch for the randomized method); this module provides the
//! dense SVD used to finish those small problems.  The algorithm is the
//! Gram-matrix eigenvalue approach on the smaller side, which is perfectly
//! adequate for the `O(R)`-sized problems that arise (R ≤ a few tens in the
//! paper's experiments).

use crate::blas::{gemm, gemm_nt, gemm_tn, normalize};
use crate::eig::symmetric_eig;
use crate::matrix::Matrix;

/// Result of a (possibly truncated) dense SVD `A ≈ U diag(σ) Vᵀ`.
#[derive(Debug, Clone)]
pub struct DenseSvd {
    /// Left singular vectors as columns.
    pub u: Matrix,
    /// Singular values in descending order.
    pub singular_values: Vec<f64>,
    /// Right singular vectors as columns.
    pub v: Matrix,
}

/// Computes the full SVD of a small dense matrix.
///
/// The Gram matrix of the smaller dimension is formed and eigendecomposed;
/// the other side's singular vectors are recovered by multiplication.  Tiny
/// singular values (below `1e-13 * σ_max`) get zero vectors on the recovered
/// side rather than amplified noise.
pub fn dense_svd(a: &Matrix) -> DenseSvd {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return DenseSvd {
            u: Matrix::zeros(m, 0),
            singular_values: vec![],
            v: Matrix::zeros(n, 0),
        };
    }
    if n <= m {
        // Eigendecompose AᵀA (n × n).
        let gram = gemm_tn(a, a);
        let eig = symmetric_eig(&gram);
        let singular_values: Vec<f64> = eig.values.iter().map(|&l| l.max(0.0).sqrt()).collect();
        let v = eig.vectors;
        // U = A V Σ^{-1}, with degenerate directions completed to an
        // orthonormal basis.
        let av = gemm(a, &v);
        let u = recover_side(&av, &singular_values);
        DenseSvd {
            u,
            singular_values,
            v,
        }
    } else {
        // Eigendecompose AAᵀ (m × m).
        let gram = gemm_nt(a, a);
        let eig = symmetric_eig(&gram);
        let singular_values: Vec<f64> = eig.values.iter().map(|&l| l.max(0.0).sqrt()).collect();
        let u = eig.vectors;
        // V = Aᵀ U Σ^{-1}
        let atu = gemm_tn(a, &u);
        let v = recover_side(&atu, &singular_values);
        DenseSvd {
            u,
            singular_values,
            v,
        }
    }
}

/// Recovers the singular vectors of the "other" side from the product
/// `A·V` (or `Aᵀ·U`), dividing by the singular values and completing the
/// directions whose singular value is numerically zero to an orthonormal
/// basis.  HOOI relies on the factor matrices having orthonormal columns
/// even when the matricized TTMc result is rank deficient, so degenerate
/// columns are filled by orthogonalizing canonical basis vectors against the
/// columns recovered so far.
fn recover_side(product: &Matrix, singular_values: &[f64]) -> Matrix {
    let m = product.nrows();
    let k = product.ncols();
    let smax = singular_values.first().copied().unwrap_or(0.0);
    let tol = 1e-12 * smax.max(1.0);
    let mut cols: Vec<Vec<f64>> = Vec::with_capacity(k);
    for j in 0..k {
        let mut col = product.col(j);
        if singular_values[j] > tol {
            let inv = 1.0 / singular_values[j];
            col.iter_mut().for_each(|x| *x *= inv);
            // Guard against loss of orthogonality in clustered spectra.
            for prev in &cols {
                let proj = crate::blas::dot(prev, &col);
                crate::blas::axpy(-proj, prev, &mut col);
            }
            if normalize(&mut col) == 0.0 {
                fill_orthogonal_complement(&mut col, &cols, j, m);
            }
        } else {
            fill_orthogonal_complement(&mut col, &cols, j, m);
        }
        cols.push(col);
    }
    let mut u = Matrix::zeros(m, k);
    for (j, col) in cols.iter().enumerate() {
        u.set_col(j, col);
    }
    u
}

/// Overwrites `col` with a unit vector orthogonal to every vector in `basis`
/// by orthogonalizing canonical basis vectors (starting near `hint`) until
/// one survives.  Leaves `col` zero only if the basis already spans `R^m`.
fn fill_orthogonal_complement(col: &mut [f64], basis: &[Vec<f64>], hint: usize, m: usize) {
    for attempt in 0..m {
        let e = (hint + attempt) % m;
        col.iter_mut().for_each(|x| *x = 0.0);
        col[e] = 1.0;
        for _ in 0..2 {
            for prev in basis {
                let proj = crate::blas::dot(prev, col);
                crate::blas::axpy(-proj, prev, col);
            }
        }
        if normalize(col) > 1e-8 {
            return;
        }
    }
    col.iter_mut().for_each(|x| *x = 0.0);
}

/// Convenience: returns the leading `k` left singular vectors of `a` as the
/// columns of an `m × k` matrix.
pub fn leading_left_singular_vectors(a: &Matrix, k: usize) -> Matrix {
    let svd = dense_svd(a);
    let k = k.min(svd.u.ncols());
    let mut out = Matrix::zeros(a.nrows(), k);
    for j in 0..k {
        out.set_col(j, &svd.u.col(j));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::qr::orthogonality_error;

    fn reconstruct(svd: &DenseSvd) -> Matrix {
        let k = svd.singular_values.len();
        let mut s = Matrix::zeros(k, k);
        for i in 0..k {
            s[(i, i)] = svd.singular_values[i];
        }
        let us = gemm(&svd.u, &s);
        gemm(&us, &svd.v.transpose())
    }

    #[test]
    fn svd_reconstructs_tall() {
        let a = Matrix::random(20, 5, 42);
        let svd = dense_svd(&a);
        let rec = reconstruct(&svd);
        assert!(a.frobenius_distance(&rec) < 1e-8 * a.frobenius_norm());
    }

    #[test]
    fn svd_reconstructs_wide() {
        let a = Matrix::random(4, 17, 9);
        let svd = dense_svd(&a);
        let rec = reconstruct(&svd);
        assert!(a.frobenius_distance(&rec) < 1e-8 * a.frobenius_norm());
    }

    #[test]
    fn svd_singular_values_descending_nonnegative() {
        let a = Matrix::random(12, 7, 3);
        let svd = dense_svd(&a);
        for w in svd.singular_values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        for &s in &svd.singular_values {
            assert!(s >= 0.0);
        }
    }

    #[test]
    fn svd_u_v_orthonormal() {
        let a = Matrix::random(15, 6, 8);
        let svd = dense_svd(&a);
        assert!(orthogonality_error(&svd.u) < 1e-8);
        assert!(orthogonality_error(&svd.v) < 1e-8);
    }

    #[test]
    fn svd_of_identity() {
        let a = Matrix::identity(4);
        let svd = dense_svd(&a);
        for &s in &svd.singular_values {
            assert!(approx_eq(s, 1.0, 1e-10));
        }
    }

    #[test]
    fn svd_rank_one() {
        // a = u v^T has exactly one nonzero singular value = |u||v|.
        let u = [1.0, 2.0, 3.0];
        let v = [4.0, 5.0];
        let a = Matrix::from_fn(3, 2, |i, j| u[i] * v[j]);
        let svd = dense_svd(&a);
        let expected = (14.0_f64).sqrt() * (41.0_f64).sqrt();
        assert!(approx_eq(svd.singular_values[0], expected, 1e-10));
        assert!(svd.singular_values[1] < 1e-8);
    }

    #[test]
    fn svd_frobenius_identity() {
        // sum of squared singular values equals squared Frobenius norm.
        let a = Matrix::random(9, 11, 55);
        let svd = dense_svd(&a);
        let ssq: f64 = svd.singular_values.iter().map(|s| s * s).sum();
        assert!(approx_eq(ssq, a.frobenius_norm().powi(2), 1e-8));
    }

    #[test]
    fn leading_vectors_shape_and_orthonormal() {
        let a = Matrix::random(25, 10, 2);
        let u = leading_left_singular_vectors(&a, 4);
        assert_eq!(u.shape(), (25, 4));
        assert!(orthogonality_error(&u) < 1e-8);
    }

    #[test]
    fn svd_empty() {
        let svd = dense_svd(&Matrix::zeros(0, 3));
        assert!(svd.singular_values.is_empty());
    }
}
