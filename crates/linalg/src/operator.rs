//! Matrix-free linear operator abstraction.
//!
//! The TRSVD step of HOOI (paper §III-A2, §III-B) never needs the matricized
//! TTMc result `Y_(n)` as an explicit assembled matrix — only the products
//! `y ← Y_(n) x` (MxV) and `xᵀ ← yᵀ Y_(n)` (MTxV).  The coarse-grain
//! distributed algorithm applies these products on a row-distributed `Y_(n)`;
//! the fine-grain algorithm applies them on a *sum-distributed*
//! `Y_(n) = Y¹_(n) + … + Yᵖ_(n)` and only communicates single vector entries.
//! Both cases, as well as the shared-memory case, implement this trait and
//! are handed to the Krylov solver in [`crate::lanczos`] unchanged.

use crate::blas::{gemv, gemv_t, par_gemv, par_gemv_t};
use crate::matrix::Matrix;

/// A real linear operator `A : R^ncols → R^nrows` exposed only through
/// matrix-vector products.
pub trait LinearOperator: Sync {
    /// Number of rows of the (implicit) matrix.
    fn nrows(&self) -> usize;
    /// Number of columns of the (implicit) matrix.
    fn ncols(&self) -> usize;
    /// `y = A x`.  `x.len() == ncols()`, `y.len() == nrows()`.
    fn apply(&self, x: &[f64], y: &mut [f64]);
    /// `y = Aᵀ x`.  `x.len() == nrows()`, `y.len() == ncols()`.
    fn apply_transpose(&self, x: &[f64], y: &mut [f64]);

    /// Materializes the operator as a dense matrix by applying it to the
    /// canonical basis.  Intended for tests and tiny operators only.
    fn to_dense(&self) -> Matrix {
        let m = self.nrows();
        let n = self.ncols();
        let mut out = Matrix::zeros(m, n);
        let mut e = vec![0.0; n];
        let mut col = vec![0.0; m];
        for j in 0..n {
            e[j] = 1.0;
            self.apply(&e, &mut col);
            for i in 0..m {
                out[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        out
    }
}

/// A [`LinearOperator`] backed by an explicit dense matrix, with optional
/// rayon parallelism over rows.
#[derive(Debug, Clone)]
pub struct DenseOperator<'a> {
    matrix: &'a Matrix,
    parallel: bool,
}

impl<'a> DenseOperator<'a> {
    /// Wraps a matrix as a sequential operator.
    pub fn new(matrix: &'a Matrix) -> Self {
        DenseOperator {
            matrix,
            parallel: false,
        }
    }

    /// Wraps a matrix as a rayon-parallel operator (parallel over rows, the
    /// shared-memory scheme of the paper's TRSVD).
    pub fn parallel(matrix: &'a Matrix) -> Self {
        DenseOperator {
            matrix,
            parallel: true,
        }
    }
}

impl LinearOperator for DenseOperator<'_> {
    fn nrows(&self) -> usize {
        self.matrix.nrows()
    }

    fn ncols(&self) -> usize {
        self.matrix.ncols()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        if self.parallel {
            par_gemv(self.matrix, x, y);
        } else {
            gemv(self.matrix, x, y);
        }
    }

    fn apply_transpose(&self, x: &[f64], y: &mut [f64]) {
        if self.parallel {
            par_gemv_t(self.matrix, x, y);
        } else {
            gemv_t(self.matrix, x, y);
        }
    }
}

/// An operator representing the sum `A = A₁ + A₂ + … + A_p` of operators of
/// identical shape, applied without ever assembling the sum.
///
/// This is the shared-memory analogue of the paper's fine-grain
/// sum-distributed `Y_(n)`; the distributed version (with communication
/// accounting) lives in the `distsim` crate.
pub struct SumOperator<'a> {
    parts: Vec<&'a dyn LinearOperator>,
    nrows: usize,
    ncols: usize,
}

impl<'a> SumOperator<'a> {
    /// Builds a sum operator.
    ///
    /// # Panics
    /// Panics if `parts` is empty or shapes disagree.
    pub fn new(parts: Vec<&'a dyn LinearOperator>) -> Self {
        assert!(!parts.is_empty(), "SumOperator needs at least one part");
        let nrows = parts[0].nrows();
        let ncols = parts[0].ncols();
        for p in &parts {
            assert_eq!(p.nrows(), nrows, "SumOperator: row mismatch");
            assert_eq!(p.ncols(), ncols, "SumOperator: column mismatch");
        }
        SumOperator {
            parts,
            nrows,
            ncols,
        }
    }
}

impl LinearOperator for SumOperator<'_> {
    fn nrows(&self) -> usize {
        self.nrows
    }

    fn ncols(&self) -> usize {
        self.ncols
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        y.iter_mut().for_each(|v| *v = 0.0);
        let mut tmp = vec![0.0; self.nrows];
        for p in &self.parts {
            p.apply(x, &mut tmp);
            crate::blas::axpy(1.0, &tmp, y);
        }
    }

    fn apply_transpose(&self, x: &[f64], y: &mut [f64]) {
        y.iter_mut().for_each(|v| *v = 0.0);
        let mut tmp = vec![0.0; self.ncols];
        for p in &self.parts {
            p.apply_transpose(x, &mut tmp);
            crate::blas::axpy(1.0, &tmp, y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn dense_operator_matches_matrix() {
        let a = Matrix::random(8, 5, 1);
        let op = DenseOperator::new(&a);
        assert_eq!(op.nrows(), 8);
        assert_eq!(op.ncols(), 5);
        let dense = op.to_dense();
        assert!(a.frobenius_distance(&dense) < 1e-14);
    }

    #[test]
    fn parallel_operator_matches_sequential() {
        let a = Matrix::random(64, 9, 2);
        let seq = DenseOperator::new(&a);
        let par = DenseOperator::parallel(&a);
        let x: Vec<f64> = (0..9).map(|i| i as f64).collect();
        let mut y1 = vec![0.0; 64];
        let mut y2 = vec![0.0; 64];
        seq.apply(&x, &mut y1);
        par.apply(&x, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            assert!(approx_eq(*u, *v, 1e-12));
        }
        let z: Vec<f64> = (0..64).map(|i| (i % 5) as f64).collect();
        let mut w1 = vec![0.0; 9];
        let mut w2 = vec![0.0; 9];
        seq.apply_transpose(&z, &mut w1);
        par.apply_transpose(&z, &mut w2);
        for (u, v) in w1.iter().zip(&w2) {
            assert!(approx_eq(*u, *v, 1e-10));
        }
    }

    #[test]
    fn sum_operator_equals_sum_of_matrices() {
        let a = Matrix::random(6, 4, 3);
        let b = Matrix::random(6, 4, 4);
        let opa = DenseOperator::new(&a);
        let opb = DenseOperator::new(&b);
        let sum = SumOperator::new(vec![&opa, &opb]);
        let mut expected = a.clone();
        expected.axpy(1.0, &b);
        let dense = sum.to_dense();
        assert!(expected.frobenius_distance(&dense) < 1e-13);
    }

    #[test]
    fn sum_operator_transpose() {
        let a = Matrix::random(5, 7, 13);
        let b = Matrix::random(5, 7, 14);
        let opa = DenseOperator::new(&a);
        let opb = DenseOperator::new(&b);
        let sum = SumOperator::new(vec![&opa, &opb]);
        let x: Vec<f64> = (0..5).map(|i| i as f64 - 2.0).collect();
        let mut y = vec![0.0; 7];
        sum.apply_transpose(&x, &mut y);
        let mut expected = vec![0.0; 7];
        let mut s = a.clone();
        s.axpy(1.0, &b);
        crate::blas::gemv_t(&s, &x, &mut expected);
        for (u, v) in y.iter().zip(&expected) {
            assert!(approx_eq(*u, *v, 1e-12));
        }
    }

    #[test]
    #[should_panic]
    fn sum_operator_rejects_mismatched_shapes() {
        let a = Matrix::zeros(3, 3);
        let b = Matrix::zeros(4, 3);
        let opa = DenseOperator::new(&a);
        let opb = DenseOperator::new(&b);
        let _ = SumOperator::new(vec![&opa, &opb]);
    }
}
