//! Symmetric eigenvalue decomposition for small dense matrices.
//!
//! Used in two places:
//!
//! * the dense SVD ([`crate::svd`]) of small projected matrices arising in
//!   the Lanczos and randomized TRSVD solvers, and
//! * Gram-matrix based SVD of genuinely small matricized tensors (e.g. the
//!   core tensor checks in tests).
//!
//! The implementation is the classical two-phase approach: Householder
//! tridiagonalization (`tred2`) followed by the implicit-shift QL iteration
//! (`tql2`), both adapted from the EISPACK formulation.  Eigenvalues are
//! returned in descending order together with their eigenvectors, which is
//! the order HOOI needs (leading singular vectors).

use crate::matrix::Matrix;

/// Eigen decomposition `A = V diag(λ) Vᵀ` of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct SymmetricEig {
    /// Eigenvalues, sorted in descending order.
    pub values: Vec<f64>,
    /// Eigenvectors as columns, in the order of `values`.
    pub vectors: Matrix,
}

/// Computes all eigenvalues and eigenvectors of a symmetric matrix.
///
/// # Panics
/// Panics if `a` is not square.  The strictly-upper triangle is ignored; the
/// matrix is assumed symmetric.
pub fn symmetric_eig(a: &Matrix) -> SymmetricEig {
    assert_eq!(a.nrows(), a.ncols(), "symmetric_eig: matrix must be square");
    let n = a.nrows();
    if n == 0 {
        return SymmetricEig {
            values: vec![],
            vectors: Matrix::zeros(0, 0),
        };
    }
    // z holds the accumulating orthogonal transformation, starting from A.
    let mut z = a.clone();
    // Force symmetry from the lower triangle to guard against tiny asymmetry.
    for i in 0..n {
        for j in 0..i {
            let v = z[(i, j)];
            z[(j, i)] = v;
        }
    }
    let mut d = vec![0.0; n]; // diagonal of tridiagonal form
    let mut e = vec![0.0; n]; // subdiagonal of tridiagonal form

    tred2(&mut z, &mut d, &mut e);
    tql2(&mut z, &mut d, &mut e);

    // Sort eigenpairs in descending order of eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| d[j].partial_cmp(&d[i]).unwrap());
    let values: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (newcol, &oldcol) in order.iter().enumerate() {
        for i in 0..n {
            vectors[(i, newcol)] = z[(i, oldcol)];
        }
    }
    SymmetricEig { values, vectors }
}

/// Householder reduction of a real symmetric matrix to tridiagonal form.
/// On output `z` contains the orthogonal transformation matrix, `d` the
/// diagonal and `e` the subdiagonal (with `e[0] = 0`).
fn tred2(z: &mut Matrix, d: &mut [f64], e: &mut [f64]) {
    let n = d.len();
    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        let mut scale = 0.0;
        if l > 0 {
            for k in 0..=l {
                scale += z[(i, k)].abs();
            }
            if scale == 0.0 {
                e[i] = z[(i, l)];
            } else {
                for k in 0..=l {
                    z[(i, k)] /= scale;
                    h += z[(i, k)] * z[(i, k)];
                }
                let mut f = z[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                z[(i, l)] = f - g;
                f = 0.0;
                for j in 0..=l {
                    z[(j, i)] = z[(i, j)] / h;
                    let mut g = 0.0;
                    for k in 0..=j {
                        g += z[(j, k)] * z[(i, k)];
                    }
                    for k in (j + 1)..=l {
                        g += z[(k, j)] * z[(i, k)];
                    }
                    e[j] = g / h;
                    f += e[j] * z[(i, j)];
                }
                let hh = f / (h + h);
                for j in 0..=l {
                    let f = z[(i, j)];
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        z[(j, k)] -= f * e[k] + g * z[(i, k)];
                    }
                }
            }
        } else {
            e[i] = z[(i, l)];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;
    for i in 0..n {
        let l = i; // columns 0..i already transformed
        if d[i] != 0.0 {
            for j in 0..l {
                let mut g = 0.0;
                for k in 0..l {
                    g += z[(i, k)] * z[(k, j)];
                }
                for k in 0..l {
                    z[(k, j)] -= g * z[(k, i)];
                }
            }
        }
        d[i] = z[(i, i)];
        z[(i, i)] = 1.0;
        for j in 0..l {
            z[(j, i)] = 0.0;
            z[(i, j)] = 0.0;
        }
    }
}

/// Implicit-shift QL iteration on a symmetric tridiagonal matrix, with
/// accumulation of the transformations into `z`.
fn tql2(z: &mut Matrix, d: &mut [f64], e: &mut [f64]) {
    let n = d.len();
    if n <= 1 {
        return;
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find a small subdiagonal element to split the matrix.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            assert!(iter <= 50, "tql2: too many iterations (no convergence)");

            // Form the implicit shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            let sign_r = if g >= 0.0 { r.abs() } else { -r.abs() };
            g = d[m] - d[l] + e[l] / (g + sign_r);
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                // Accumulate the transformation.
                for k in 0..n {
                    f = z[(k, i + 1)];
                    z[(k, i + 1)] = s * z[(k, i)] + c * f;
                    z[(k, i)] = c * z[(k, i)] - s * f;
                }
            }
            if r == 0.0 && m > l {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas::{gemm, gram};
    use crate::qr::orthogonality_error;

    fn reconstruct(eig: &SymmetricEig) -> Matrix {
        let n = eig.values.len();
        let mut lambda = Matrix::zeros(n, n);
        for i in 0..n {
            lambda[(i, i)] = eig.values[i];
        }
        let vl = gemm(&eig.vectors, &lambda);
        gemm(&vl, &eig.vectors.transpose())
    }

    #[test]
    fn eig_diagonal_matrix() {
        let mut a = Matrix::zeros(3, 3);
        a[(0, 0)] = 3.0;
        a[(1, 1)] = 1.0;
        a[(2, 2)] = 2.0;
        let eig = symmetric_eig(&a);
        assert!((eig.values[0] - 3.0).abs() < 1e-12);
        assert!((eig.values[1] - 2.0).abs() < 1e-12);
        assert!((eig.values[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eig_known_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let eig = symmetric_eig(&a);
        assert!((eig.values[0] - 3.0).abs() < 1e-12);
        assert!((eig.values[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eig_reconstructs_random_gram() {
        let b = Matrix::random(12, 6, 17);
        let a = gram(&b); // symmetric positive semidefinite
        let eig = symmetric_eig(&a);
        let rec = reconstruct(&eig);
        assert!(a.frobenius_distance(&rec) < 1e-8 * a.frobenius_norm().max(1.0));
    }

    #[test]
    fn eig_vectors_are_orthonormal() {
        let b = Matrix::random(9, 9, 23);
        let a = gram(&b);
        let eig = symmetric_eig(&a);
        assert!(orthogonality_error(&eig.vectors) < 1e-9);
    }

    #[test]
    fn eig_values_descending() {
        let b = Matrix::random(15, 8, 5);
        let a = gram(&b);
        let eig = symmetric_eig(&a);
        for w in eig.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn eig_psd_values_nonnegative() {
        let b = Matrix::random(10, 4, 31);
        let a = gram(&b);
        let eig = symmetric_eig(&a);
        for &v in &eig.values {
            assert!(v >= -1e-9);
        }
    }

    #[test]
    fn eig_empty_and_single() {
        let e = symmetric_eig(&Matrix::zeros(0, 0));
        assert!(e.values.is_empty());
        let mut one = Matrix::zeros(1, 1);
        one[(0, 0)] = 42.0;
        let e = symmetric_eig(&one);
        assert_eq!(e.values, vec![42.0]);
        assert!((e.vectors[(0, 0)].abs() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn eig_trace_preserved() {
        let b = Matrix::random(11, 11, 3);
        let a = gram(&b);
        let trace: f64 = (0..11).map(|i| a[(i, i)]).sum();
        let eig = symmetric_eig(&a);
        let sum: f64 = eig.values.iter().sum();
        assert!((trace - sum).abs() < 1e-8 * trace.abs().max(1.0));
    }
}
