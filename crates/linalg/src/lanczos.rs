//! Matrix-free truncated SVD via Golub–Kahan–Lanczos bidiagonalization.
//!
//! This is the Rust stand-in for the SLEPc iterative SVD solver the paper
//! uses for the TRSVD step: it touches the operator only through `MxV` and
//! `MTxV` products, computes only the `R_n` leading singular triplets, keeps
//! full reorthogonalization of both Krylov bases (the bases have at most a
//! few tens of vectors, so this is cheap and keeps the method robust), and
//! finishes the small projected bidiagonal problem with the dense SVD from
//! [`crate::svd`].
//!
//! The paper reports that SLEPc converged in fewer than 5 outer iterations
//! for all instances; this solver typically converges in a similar number of
//! (restarted) expansions because the matricized TTMc results have strongly
//! decaying spectra.

use crate::blas::{axpy, dot, normalize, nrm2};
use crate::matrix::Matrix;
use crate::operator::LinearOperator;
use crate::svd::dense_svd;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Options controlling the Lanczos truncated SVD.
#[derive(Debug, Clone)]
pub struct LanczosOptions {
    /// Maximum dimension of the Krylov subspace (per restart).  Defaults to
    /// `2 * rank + 10`.
    pub max_subspace: Option<usize>,
    /// Maximum number of restarts before giving up and returning the best
    /// available approximation.
    pub max_restarts: usize,
    /// Relative residual tolerance on each requested singular triplet.
    pub tol: f64,
    /// Seed for the random starting vector.
    pub seed: u64,
}

impl Default for LanczosOptions {
    fn default() -> Self {
        LanczosOptions {
            max_subspace: None,
            max_restarts: 8,
            tol: 1e-8,
            seed: 0x5eed_1a2c,
        }
    }
}

/// A truncated SVD `A ≈ U diag(σ) Vᵀ` with `k` columns.
#[derive(Debug, Clone)]
pub struct TruncatedSvd {
    /// Leading left singular vectors (`nrows × k`).
    pub u: Matrix,
    /// Leading singular values, descending.
    pub singular_values: Vec<f64>,
    /// Leading right singular vectors (`ncols × k`).
    pub v: Matrix,
    /// Number of operator applications (`MxV` plus `MTxV`) performed.
    pub operator_applications: usize,
    /// Whether every requested triplet met the residual tolerance.
    pub converged: bool,
}

/// Computes the `rank` leading singular triplets of a matrix-free operator.
///
/// # Panics
/// Panics if `rank == 0`.
pub fn lanczos_svd(op: &dyn LinearOperator, rank: usize, opts: &LanczosOptions) -> TruncatedSvd {
    assert!(rank > 0, "lanczos_svd: rank must be positive");
    let m = op.nrows();
    let n = op.ncols();
    let max_rank = m.min(n);
    let rank = rank.min(max_rank.max(1));
    if m == 0 || n == 0 {
        return TruncatedSvd {
            u: Matrix::zeros(m, 0),
            singular_values: vec![],
            v: Matrix::zeros(n, 0),
            operator_applications: 0,
            converged: true,
        };
    }

    let mut subspace = opts
        .max_subspace
        .unwrap_or(2 * rank + 10)
        .clamp(rank, max_rank);

    // When the Krylov subspace would cover the whole small dimension anyway,
    // a Krylov method has no advantage: the projected problem can still miss
    // the row (or column) space.  Fall back to an exact dense SVD obtained by
    // materializing the operator, provided that is affordable.  In HOOI this
    // branch only triggers for genuinely small matricized tensors.
    const DENSE_FALLBACK_ENTRIES: usize = 4_000_000;
    if subspace >= max_rank && m.saturating_mul(n) <= DENSE_FALLBACK_ENTRIES {
        let dense = op.to_dense();
        let svd = dense_svd(&dense);
        let take = rank.min(svd.singular_values.len());
        let mut u = Matrix::zeros(m, take);
        let mut v = Matrix::zeros(n, take);
        for j in 0..take {
            u.set_col(j, &svd.u.col(j));
            v.set_col(j, &svd.v.col(j));
        }
        return TruncatedSvd {
            u,
            singular_values: svd.singular_values[..take].to_vec(),
            v,
            operator_applications: n,
            converged: true,
        };
    }

    let mut rng = SmallRng::seed_from_u64(opts.seed);
    let mut applications = 0usize;

    // Krylov bases: uvecs[i] has length m, vvecs[i] has length n.
    let mut uvecs: Vec<Vec<f64>> = Vec::with_capacity(subspace);
    let mut vvecs: Vec<Vec<f64>> = Vec::with_capacity(subspace + 1);
    let mut alphas: Vec<f64> = Vec::with_capacity(subspace);
    let mut betas: Vec<f64> = Vec::with_capacity(subspace);

    // Starting vector.
    let mut v: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
    normalize(&mut v);
    vvecs.push(v);

    let mut best: Option<TruncatedSvd> = None;

    for _restart in 0..opts.max_restarts.max(1) {
        // Expand the factorization until the subspace is full.
        while alphas.len() < subspace {
            let j = alphas.len();
            // u_j = A v_j - beta_{j-1} u_{j-1}
            let mut u = vec![0.0; m];
            op.apply(&vvecs[j], &mut u);
            applications += 1;
            if j > 0 {
                let beta_prev = betas[j - 1];
                axpy(-beta_prev, &uvecs[j - 1], &mut u);
            }
            // Full reorthogonalization against previous u's.
            reorthogonalize(&mut u, &uvecs);
            let alpha = nrm2(&u);
            if alpha <= f64::EPSILON * (m as f64).sqrt() {
                // Breakdown: the range has been exhausted.
                break;
            }
            u.iter_mut().for_each(|x| *x /= alpha);
            alphas.push(alpha);
            uvecs.push(u);

            // v_{j+1} = Aᵀ u_j - alpha_j v_j
            let mut w = vec![0.0; n];
            op.apply_transpose(&uvecs[j], &mut w);
            applications += 1;
            axpy(-alpha, &vvecs[j], &mut w);
            reorthogonalize(&mut w, &vvecs);
            let beta = nrm2(&w);
            if beta <= f64::EPSILON * (n as f64).sqrt() {
                betas.push(0.0);
                // Deflation: restart direction is exhausted too.
                break;
            }
            w.iter_mut().for_each(|x| *x /= beta);
            betas.push(beta);
            vvecs.push(w);
        }

        let k = alphas.len();
        if k == 0 {
            // Operator is (numerically) zero.
            return TruncatedSvd {
                u: Matrix::zeros(m, rank),
                singular_values: vec![0.0; rank],
                v: Matrix::zeros(n, rank),
                operator_applications: applications,
                converged: true,
            };
        }

        // Build the k×k (upper) bidiagonal projected matrix B with alphas on
        // the diagonal and betas on the superdiagonal.
        let mut b = Matrix::zeros(k, k);
        for i in 0..k {
            b[(i, i)] = alphas[i];
            if i + 1 < k {
                b[(i, i + 1)] = betas[i];
            }
        }
        let bsvd = dense_svd(&b);

        let take = rank.min(k);
        // Residual estimate for the i-th Ritz triplet:
        // ‖A v_i - σ_i u_i‖ ≈ |beta_k| * |last component of B's right vector|
        // (standard GKL bound).
        let beta_last = if k == betas.len() && k > 0 {
            betas[k - 1]
        } else {
            0.0
        };
        let sigma_max = bsvd.singular_values.first().copied().unwrap_or(0.0);
        let mut converged = true;
        for i in 0..take {
            let resid = beta_last * bsvd.u.col(i)[k - 1].abs();
            if resid > opts.tol * sigma_max.max(1e-300) {
                converged = false;
                break;
            }
        }
        let exhausted = k < subspace; // breakdown: the factorization is exact

        // Lift the projected singular vectors back to the full space.
        let mut u_full = Matrix::zeros(m, take);
        let mut v_full = Matrix::zeros(n, take);
        for col in 0..take {
            let pu = bsvd.u.col(col);
            let pv = bsvd.v.col(col);
            let mut ucol = vec![0.0; m];
            for (j, &c) in pu.iter().enumerate() {
                if c != 0.0 {
                    axpy(c, &uvecs[j], &mut ucol);
                }
            }
            let mut vcol = vec![0.0; n];
            for (j, &c) in pv.iter().enumerate() {
                if c != 0.0 {
                    axpy(c, &vvecs[j], &mut vcol);
                }
            }
            u_full.set_col(col, &ucol);
            v_full.set_col(col, &vcol);
        }
        let singular_values: Vec<f64> = bsvd.singular_values[..take].to_vec();

        let result = TruncatedSvd {
            u: u_full,
            singular_values,
            v: v_full,
            operator_applications: applications,
            converged: converged || exhausted,
        };
        if result.converged {
            return result;
        }
        best = Some(result);

        // Thick restart would be the production choice; for the subspace
        // sizes used here simply enlarging the subspace on restart is
        // sufficient and keeps the code simple.  The bases built so far are
        // kept, so the next pass only expands the factorization from `k`
        // toward the larger bound.
        let new_subspace = (subspace + subspace / 2 + 1).min(max_rank);
        if new_subspace == subspace {
            // The subspace is already at the small dimension and cannot
            // grow — another pass cannot improve the estimate.  (Breakdown,
            // k < subspace, returned above: the factorization is exact.)
            break;
        }
        subspace = new_subspace;
    }

    best.unwrap_or_else(|| TruncatedSvd {
        u: Matrix::zeros(m, rank),
        singular_values: vec![0.0; rank],
        v: Matrix::zeros(n, rank),
        operator_applications: applications,
        converged: false,
    })
}

/// Orthogonalizes `x` against every vector in `basis` (classical Gram-Schmidt
/// with a second pass for numerical safety).
fn reorthogonalize(x: &mut [f64], basis: &[Vec<f64>]) {
    for _ in 0..2 {
        for b in basis {
            let proj = dot(b, x);
            if proj != 0.0 {
                axpy(-proj, b, x);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::blas::gemm;
    use crate::operator::DenseOperator;
    use crate::qr::orthogonality_error;
    use crate::svd::dense_svd as reference_svd;

    #[test]
    fn lanczos_matches_dense_svd_values() {
        let a = Matrix::random(60, 24, 7);
        let op = DenseOperator::new(&a);
        let reference = reference_svd(&a);
        let result = lanczos_svd(&op, 5, &LanczosOptions::default());
        assert_eq!(result.singular_values.len(), 5);
        for i in 0..5 {
            assert!(
                approx_eq(
                    result.singular_values[i],
                    reference.singular_values[i],
                    1e-6
                ),
                "σ_{i}: {} vs {}",
                result.singular_values[i],
                reference.singular_values[i]
            );
        }
    }

    #[test]
    fn lanczos_left_vectors_orthonormal() {
        let a = Matrix::random(80, 30, 11);
        let op = DenseOperator::new(&a);
        let result = lanczos_svd(&op, 6, &LanczosOptions::default());
        assert!(orthogonality_error(&result.u) < 1e-6);
        assert!(orthogonality_error(&result.v) < 1e-6);
    }

    #[test]
    fn lanczos_reconstructs_low_rank_matrix() {
        // A = B C with inner dimension 4 has rank exactly 4.
        let b = Matrix::random(50, 4, 3);
        let c = Matrix::random(4, 20, 4);
        let a = gemm(&b, &c);
        let op = DenseOperator::new(&a);
        let result = lanczos_svd(&op, 4, &LanczosOptions::default());
        // Reconstruct and compare.
        let mut s = Matrix::zeros(4, 4);
        for i in 0..4 {
            s[(i, i)] = result.singular_values[i];
        }
        let us = gemm(&result.u, &s);
        let rec = gemm(&us, &result.v.transpose());
        assert!(a.frobenius_distance(&rec) < 1e-6 * a.frobenius_norm());
    }

    #[test]
    fn lanczos_detects_rank_deficiency() {
        let b = Matrix::random(30, 2, 5);
        let c = Matrix::random(2, 15, 6);
        let a = gemm(&b, &c); // rank 2
        let op = DenseOperator::new(&a);
        let result = lanczos_svd(&op, 5, &LanczosOptions::default());
        // Requested 5 but only 2 nonzero singular values exist.
        assert!(result.singular_values[0] > 1e-6);
        assert!(result.singular_values[1] > 1e-6);
        for &s in result.singular_values.iter().skip(2) {
            assert!(s < 1e-6 * result.singular_values[0]);
        }
    }

    #[test]
    fn lanczos_on_tall_skinny() {
        let a = Matrix::random(500, 8, 21);
        let op = DenseOperator::new(&a);
        let reference = reference_svd(&a);
        let result = lanczos_svd(&op, 3, &LanczosOptions::default());
        for i in 0..3 {
            assert!(approx_eq(
                result.singular_values[i],
                reference.singular_values[i],
                1e-6
            ));
        }
    }

    #[test]
    fn lanczos_on_wide_matrix() {
        let a = Matrix::random(10, 300, 22);
        let op = DenseOperator::new(&a);
        let reference = reference_svd(&a);
        let result = lanczos_svd(&op, 4, &LanczosOptions::default());
        for i in 0..4 {
            assert!(approx_eq(
                result.singular_values[i],
                reference.singular_values[i],
                1e-6
            ));
        }
    }

    #[test]
    fn lanczos_zero_operator() {
        let a = Matrix::zeros(10, 10);
        let op = DenseOperator::new(&a);
        let result = lanczos_svd(&op, 3, &LanczosOptions::default());
        for &s in &result.singular_values {
            assert!(s.abs() < 1e-12);
        }
    }

    #[test]
    fn lanczos_rank_capped_by_dimensions() {
        let a = Matrix::random(20, 3, 2);
        let op = DenseOperator::new(&a);
        let result = lanczos_svd(&op, 10, &LanczosOptions::default());
        assert!(result.singular_values.len() <= 3);
    }

    #[test]
    fn lanczos_counts_applications() {
        let a = Matrix::random(40, 12, 2);
        let op = DenseOperator::new(&a);
        let result = lanczos_svd(&op, 2, &LanczosOptions::default());
        assert!(result.operator_applications > 0);
    }

    #[test]
    #[should_panic]
    fn lanczos_rejects_zero_rank() {
        let a = Matrix::random(5, 5, 1);
        let op = DenseOperator::new(&a);
        let _ = lanczos_svd(&op, 0, &LanczosOptions::default());
    }
}
