//! Matrix-free truncated SVD via Golub–Kahan–Lanczos bidiagonalization.
//!
//! This is the Rust stand-in for the SLEPc iterative SVD solver the paper
//! uses for the TRSVD step: it touches the operator only through `MxV` and
//! `MTxV` products, computes only the `R_n` leading singular triplets, keeps
//! full reorthogonalization of both Krylov bases (the bases have at most a
//! few tens of vectors, so this is cheap and keeps the method robust), and
//! finishes the small projected bidiagonal problem with the dense SVD from
//! [`crate::svd`].
//!
//! The paper reports that SLEPc converged in fewer than 5 outer iterations
//! for all instances; this solver typically converges in a similar number of
//! (restarted) expansions because the matricized TTMc results have strongly
//! decaying spectra.

use crate::blas::{axpy, dot, normalize, nrm2};
use crate::matrix::Matrix;
use crate::operator::LinearOperator;
use crate::svd::dense_svd;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Options controlling the Lanczos truncated SVD.
#[derive(Debug, Clone)]
pub struct LanczosOptions {
    /// Maximum dimension of the Krylov subspace (per restart).  Defaults to
    /// `2 * rank + 10`.
    pub max_subspace: Option<usize>,
    /// Maximum number of restarts before giving up and returning the best
    /// available approximation.
    pub max_restarts: usize,
    /// Relative residual tolerance on each requested singular triplet.
    pub tol: f64,
    /// Seed for the random starting vector.
    pub seed: u64,
}

impl Default for LanczosOptions {
    fn default() -> Self {
        LanczosOptions {
            max_subspace: None,
            max_restarts: 8,
            tol: 1e-8,
            seed: 0x5eed_1a2c,
        }
    }
}

/// Reusable scratch buffers for [`lanczos_svd_with`].
///
/// One Lanczos solve allocates `O(subspace)` Krylov basis vectors (length
/// `m` and `n`) plus the small projected bidiagonal problem.  Inside a HOOI
/// loop the same shapes recur every iteration and every solve, so callers
/// that run many TRSVDs (see `hooi::HooiWorkspace`) keep one of these
/// alive and the solver recycles its buffers instead of allocating fresh
/// ones per call.  A workspace never influences the numerical result: every
/// buffer handed out is zero-filled first.
///
/// ```
/// use linalg::lanczos::{lanczos_svd, lanczos_svd_with, LanczosOptions, LanczosWorkspace};
/// use linalg::operator::DenseOperator;
/// use linalg::Matrix;
///
/// let a = Matrix::random(40, 12, 7);
/// let op = DenseOperator::new(&a);
/// let mut ws = LanczosWorkspace::new();
/// let with_ws = lanczos_svd_with(&op, 3, &LanczosOptions::default(), &mut ws);
/// let fresh = lanczos_svd(&op, 3, &LanczosOptions::default());
/// assert_eq!(with_ws.singular_values, fresh.singular_values);
/// ```
#[derive(Debug, Default)]
pub struct LanczosWorkspace {
    /// Recycled row-space buffers (length `m` at last use).
    left: Vec<Vec<f64>>,
    /// Recycled column-space buffers (length `n` at last use).
    right: Vec<Vec<f64>>,
    /// Recycled storage of the projected bidiagonal problem.
    projected: Vec<f64>,
}

impl LanczosWorkspace {
    /// Creates an empty workspace; buffers are adopted from the first solve.
    pub fn new() -> Self {
        LanczosWorkspace::default()
    }

    fn take(pool: &mut Vec<Vec<f64>>, len: usize) -> Vec<f64> {
        match pool.pop() {
            Some(mut v) => {
                v.clear();
                v.resize(len, 0.0);
                v
            }
            None => vec![0.0; len],
        }
    }

    fn take_left(&mut self, len: usize) -> Vec<f64> {
        Self::take(&mut self.left, len)
    }

    fn take_right(&mut self, len: usize) -> Vec<f64> {
        Self::take(&mut self.right, len)
    }

    fn take_projected(&mut self, len: usize) -> Vec<f64> {
        let mut v = std::mem::take(&mut self.projected);
        v.clear();
        v.resize(len, 0.0);
        v
    }

    /// Number of basis buffers currently parked for reuse (diagnostics).
    pub fn pooled_buffers(&self) -> usize {
        self.left.len() + self.right.len()
    }

    /// Total `f64` entries currently parked for reuse (diagnostics).
    pub fn pooled_floats(&self) -> usize {
        self.left.iter().map(Vec::len).sum::<usize>()
            + self.right.iter().map(Vec::len).sum::<usize>()
            + self.projected.len()
    }
}

/// A truncated SVD `A ≈ U diag(σ) Vᵀ` with `k` columns.
#[derive(Debug, Clone)]
pub struct TruncatedSvd {
    /// Leading left singular vectors (`nrows × k`).
    pub u: Matrix,
    /// Leading singular values, descending.
    pub singular_values: Vec<f64>,
    /// Leading right singular vectors (`ncols × k`).
    pub v: Matrix,
    /// Number of operator applications (`MxV` plus `MTxV`) performed.
    pub operator_applications: usize,
    /// Whether every requested triplet met the residual tolerance.
    pub converged: bool,
}

/// Computes the `rank` leading singular triplets of a matrix-free operator.
///
/// Allocates fresh scratch buffers; callers running many solves of similar
/// shape should prefer [`lanczos_svd_with`] and a long-lived
/// [`LanczosWorkspace`].
///
/// # Panics
/// Panics if `rank == 0`.
pub fn lanczos_svd(op: &dyn LinearOperator, rank: usize, opts: &LanczosOptions) -> TruncatedSvd {
    lanczos_svd_with(op, rank, opts, &mut LanczosWorkspace::new())
}

/// [`lanczos_svd`] with caller-provided scratch buffers: the Krylov basis
/// vectors and the projected bidiagonal problem are drawn from (and returned
/// to) `ws` instead of being allocated per call.
///
/// # Panics
/// Panics if `rank == 0`.
pub fn lanczos_svd_with(
    op: &dyn LinearOperator,
    rank: usize,
    opts: &LanczosOptions,
    ws: &mut LanczosWorkspace,
) -> TruncatedSvd {
    assert!(rank > 0, "lanczos_svd: rank must be positive");
    let m = op.nrows();
    let n = op.ncols();
    let max_rank = m.min(n);
    let rank = rank.min(max_rank.max(1));
    if m == 0 || n == 0 {
        return TruncatedSvd {
            u: Matrix::zeros(m, 0),
            singular_values: vec![],
            v: Matrix::zeros(n, 0),
            operator_applications: 0,
            converged: true,
        };
    }

    let mut subspace = opts
        .max_subspace
        .unwrap_or(2 * rank + 10)
        .clamp(rank, max_rank);

    // When the Krylov subspace would cover the whole small dimension anyway,
    // a Krylov method has no advantage: the projected problem can still miss
    // the row (or column) space.  Fall back to an exact dense SVD obtained by
    // materializing the operator, provided that is affordable.  In HOOI this
    // branch only triggers for genuinely small matricized tensors.
    const DENSE_FALLBACK_ENTRIES: usize = 4_000_000;
    if subspace >= max_rank && m.saturating_mul(n) <= DENSE_FALLBACK_ENTRIES {
        let dense = op.to_dense();
        let svd = dense_svd(&dense);
        let take = rank.min(svd.singular_values.len());
        let mut u = Matrix::zeros(m, take);
        let mut v = Matrix::zeros(n, take);
        for j in 0..take {
            u.set_col(j, &svd.u.col(j));
            v.set_col(j, &svd.v.col(j));
        }
        return TruncatedSvd {
            u,
            singular_values: svd.singular_values[..take].to_vec(),
            v,
            operator_applications: n,
            converged: true,
        };
    }

    let mut rng = SmallRng::seed_from_u64(opts.seed);
    let mut applications = 0usize;

    // Krylov bases: uvecs[i] has length m, vvecs[i] has length n.  The
    // vectors come from the workspace pool and are returned to it after the
    // result has been lifted back to the full space.
    let mut uvecs: Vec<Vec<f64>> = Vec::with_capacity(subspace);
    let mut vvecs: Vec<Vec<f64>> = Vec::with_capacity(subspace + 1);
    let mut alphas: Vec<f64> = Vec::with_capacity(subspace);
    let mut betas: Vec<f64> = Vec::with_capacity(subspace);

    // Starting vector.
    let mut v = ws.take_right(n);
    v.iter_mut().for_each(|x| *x = rng.gen::<f64>() - 0.5);
    normalize(&mut v);
    vvecs.push(v);

    let mut best: Option<TruncatedSvd> = None;

    let result = 'solve: {
        for _restart in 0..opts.max_restarts.max(1) {
            // Expand the factorization until the subspace is full.
            while alphas.len() < subspace {
                let j = alphas.len();
                // u_j = A v_j - beta_{j-1} u_{j-1}
                let mut u = ws.take_left(m);
                op.apply(&vvecs[j], &mut u);
                applications += 1;
                if j > 0 {
                    let beta_prev = betas[j - 1];
                    axpy(-beta_prev, &uvecs[j - 1], &mut u);
                }
                // Full reorthogonalization against previous u's.
                reorthogonalize(&mut u, &uvecs);
                let alpha = nrm2(&u);
                if alpha <= f64::EPSILON * (m as f64).sqrt() {
                    // Breakdown: the range has been exhausted.
                    ws.left.push(u);
                    break;
                }
                u.iter_mut().for_each(|x| *x /= alpha);
                alphas.push(alpha);
                uvecs.push(u);

                // v_{j+1} = Aᵀ u_j - alpha_j v_j
                let mut w = ws.take_right(n);
                op.apply_transpose(&uvecs[j], &mut w);
                applications += 1;
                axpy(-alpha, &vvecs[j], &mut w);
                reorthogonalize(&mut w, &vvecs);
                let beta = nrm2(&w);
                if beta <= f64::EPSILON * (n as f64).sqrt() {
                    betas.push(0.0);
                    // Deflation: restart direction is exhausted too.
                    ws.right.push(w);
                    break;
                }
                w.iter_mut().for_each(|x| *x /= beta);
                betas.push(beta);
                vvecs.push(w);
            }

            let k = alphas.len();
            if k == 0 {
                // Operator is (numerically) zero.
                break 'solve TruncatedSvd {
                    u: Matrix::zeros(m, rank),
                    singular_values: vec![0.0; rank],
                    v: Matrix::zeros(n, rank),
                    operator_applications: applications,
                    converged: true,
                };
            }

            // Build the k×k (upper) bidiagonal projected matrix B with
            // alphas on the diagonal and betas on the superdiagonal.
            let mut b = Matrix::from_vec(k, k, ws.take_projected(k * k));
            for i in 0..k {
                b[(i, i)] = alphas[i];
                if i + 1 < k {
                    b[(i, i + 1)] = betas[i];
                }
            }
            let bsvd = dense_svd(&b);
            ws.projected = b.into_vec();

            let take = rank.min(k);
            // Residual estimate for the i-th Ritz triplet:
            // ‖A v_i - σ_i u_i‖ ≈ |beta_k| * |last component of B's right
            // vector| (standard GKL bound).
            let beta_last = if k == betas.len() && k > 0 {
                betas[k - 1]
            } else {
                0.0
            };
            let sigma_max = bsvd.singular_values.first().copied().unwrap_or(0.0);
            let mut converged = true;
            for i in 0..take {
                let resid = beta_last * bsvd.u.col(i)[k - 1].abs();
                if resid > opts.tol * sigma_max.max(1e-300) {
                    converged = false;
                    break;
                }
            }
            let exhausted = k < subspace; // breakdown: the factorization is exact

            // Lift the projected singular vectors back to the full space.
            let mut u_full = Matrix::zeros(m, take);
            let mut v_full = Matrix::zeros(n, take);
            let mut ucol = ws.take_left(m);
            let mut vcol = ws.take_right(n);
            for col in 0..take {
                let pu = bsvd.u.col(col);
                let pv = bsvd.v.col(col);
                ucol.iter_mut().for_each(|x| *x = 0.0);
                for (j, &c) in pu.iter().enumerate() {
                    if c != 0.0 {
                        axpy(c, &uvecs[j], &mut ucol);
                    }
                }
                vcol.iter_mut().for_each(|x| *x = 0.0);
                for (j, &c) in pv.iter().enumerate() {
                    if c != 0.0 {
                        axpy(c, &vvecs[j], &mut vcol);
                    }
                }
                u_full.set_col(col, &ucol);
                v_full.set_col(col, &vcol);
            }
            ws.left.push(ucol);
            ws.right.push(vcol);
            let singular_values: Vec<f64> = bsvd.singular_values[..take].to_vec();

            let result = TruncatedSvd {
                u: u_full,
                singular_values,
                v: v_full,
                operator_applications: applications,
                converged: converged || exhausted,
            };
            if result.converged {
                break 'solve result;
            }
            best = Some(result);

            // Thick restart would be the production choice; for the subspace
            // sizes used here simply enlarging the subspace on restart is
            // sufficient and keeps the code simple.  The bases built so far
            // are kept, so the next pass only expands the factorization from
            // `k` toward the larger bound.
            let new_subspace = (subspace + subspace / 2 + 1).min(max_rank);
            if new_subspace == subspace {
                // The subspace is already at the small dimension and cannot
                // grow — another pass cannot improve the estimate.
                // (Breakdown, k < subspace, broke out above: the
                // factorization is exact.)
                break;
            }
            subspace = new_subspace;
        }

        best.take().unwrap_or_else(|| TruncatedSvd {
            u: Matrix::zeros(m, rank),
            singular_values: vec![0.0; rank],
            v: Matrix::zeros(n, rank),
            operator_applications: applications,
            converged: false,
        })
    };

    // Park the Krylov bases for the next solve.
    ws.left.append(&mut uvecs);
    ws.right.append(&mut vvecs);
    result
}

/// Orthogonalizes `x` against every vector in `basis` (classical Gram-Schmidt
/// with a second pass for numerical safety).
fn reorthogonalize(x: &mut [f64], basis: &[Vec<f64>]) {
    for _ in 0..2 {
        for b in basis {
            let proj = dot(b, x);
            if proj != 0.0 {
                axpy(-proj, b, x);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::blas::gemm;
    use crate::operator::DenseOperator;
    use crate::qr::orthogonality_error;
    use crate::svd::dense_svd as reference_svd;

    #[test]
    fn lanczos_matches_dense_svd_values() {
        let a = Matrix::random(60, 24, 7);
        let op = DenseOperator::new(&a);
        let reference = reference_svd(&a);
        let result = lanczos_svd(&op, 5, &LanczosOptions::default());
        assert_eq!(result.singular_values.len(), 5);
        for i in 0..5 {
            assert!(
                approx_eq(
                    result.singular_values[i],
                    reference.singular_values[i],
                    1e-6
                ),
                "σ_{i}: {} vs {}",
                result.singular_values[i],
                reference.singular_values[i]
            );
        }
    }

    #[test]
    fn lanczos_left_vectors_orthonormal() {
        let a = Matrix::random(80, 30, 11);
        let op = DenseOperator::new(&a);
        let result = lanczos_svd(&op, 6, &LanczosOptions::default());
        assert!(orthogonality_error(&result.u) < 1e-6);
        assert!(orthogonality_error(&result.v) < 1e-6);
    }

    #[test]
    fn lanczos_reconstructs_low_rank_matrix() {
        // A = B C with inner dimension 4 has rank exactly 4.
        let b = Matrix::random(50, 4, 3);
        let c = Matrix::random(4, 20, 4);
        let a = gemm(&b, &c);
        let op = DenseOperator::new(&a);
        let result = lanczos_svd(&op, 4, &LanczosOptions::default());
        // Reconstruct and compare.
        let mut s = Matrix::zeros(4, 4);
        for i in 0..4 {
            s[(i, i)] = result.singular_values[i];
        }
        let us = gemm(&result.u, &s);
        let rec = gemm(&us, &result.v.transpose());
        assert!(a.frobenius_distance(&rec) < 1e-6 * a.frobenius_norm());
    }

    #[test]
    fn lanczos_detects_rank_deficiency() {
        let b = Matrix::random(30, 2, 5);
        let c = Matrix::random(2, 15, 6);
        let a = gemm(&b, &c); // rank 2
        let op = DenseOperator::new(&a);
        let result = lanczos_svd(&op, 5, &LanczosOptions::default());
        // Requested 5 but only 2 nonzero singular values exist.
        assert!(result.singular_values[0] > 1e-6);
        assert!(result.singular_values[1] > 1e-6);
        for &s in result.singular_values.iter().skip(2) {
            assert!(s < 1e-6 * result.singular_values[0]);
        }
    }

    #[test]
    fn lanczos_on_tall_skinny() {
        let a = Matrix::random(500, 8, 21);
        let op = DenseOperator::new(&a);
        let reference = reference_svd(&a);
        let result = lanczos_svd(&op, 3, &LanczosOptions::default());
        for i in 0..3 {
            assert!(approx_eq(
                result.singular_values[i],
                reference.singular_values[i],
                1e-6
            ));
        }
    }

    #[test]
    fn lanczos_on_wide_matrix() {
        let a = Matrix::random(10, 300, 22);
        let op = DenseOperator::new(&a);
        let reference = reference_svd(&a);
        let result = lanczos_svd(&op, 4, &LanczosOptions::default());
        for i in 0..4 {
            assert!(approx_eq(
                result.singular_values[i],
                reference.singular_values[i],
                1e-6
            ));
        }
    }

    #[test]
    fn lanczos_zero_operator() {
        let a = Matrix::zeros(10, 10);
        let op = DenseOperator::new(&a);
        let result = lanczos_svd(&op, 3, &LanczosOptions::default());
        for &s in &result.singular_values {
            assert!(s.abs() < 1e-12);
        }
    }

    #[test]
    fn lanczos_rank_capped_by_dimensions() {
        let a = Matrix::random(20, 3, 2);
        let op = DenseOperator::new(&a);
        let result = lanczos_svd(&op, 10, &LanczosOptions::default());
        assert!(result.singular_values.len() <= 3);
    }

    #[test]
    fn lanczos_counts_applications() {
        let a = Matrix::random(40, 12, 2);
        let op = DenseOperator::new(&a);
        let result = lanczos_svd(&op, 2, &LanczosOptions::default());
        assert!(result.operator_applications > 0);
    }

    #[test]
    fn workspace_reuse_is_bitwise_identical_and_pools_buffers() {
        let a = Matrix::random(70, 20, 9);
        let op = DenseOperator::new(&a);
        let opts = LanczosOptions::default();
        let fresh = lanczos_svd(&op, 4, &opts);

        let mut ws = LanczosWorkspace::new();
        let first = lanczos_svd_with(&op, 4, &opts, &mut ws);
        let pooled_after_first = ws.pooled_buffers();
        assert!(pooled_after_first > 0, "bases should be parked for reuse");
        let second = lanczos_svd_with(&op, 4, &opts, &mut ws);

        // The workspace must never change the numbers.
        assert_eq!(first.singular_values, fresh.singular_values);
        assert_eq!(second.singular_values, fresh.singular_values);
        assert_eq!(first.u, fresh.u);
        assert_eq!(second.u, fresh.u);
        // And the second solve recycles instead of growing the pool.
        assert_eq!(ws.pooled_buffers(), pooled_after_first);
        assert!(ws.pooled_floats() > 0);
    }

    #[test]
    #[should_panic]
    fn lanczos_rejects_zero_rank() {
        let a = Matrix::random(5, 5, 1);
        let op = DenseOperator::new(&a);
        let _ = lanczos_svd(&op, 0, &LanczosOptions::default());
    }
}
