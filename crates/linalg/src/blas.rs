//! BLAS-like kernels on slices and [`Matrix`].
//!
//! The TRSVD step of HOOI is dominated by dense matrix-vector (`MxV`) and
//! matrix-transpose-vector (`MTxV`) products with the matricized TTMc result
//! `Y_(n)` (paper §III-A2), so those two kernels have rayon-parallel
//! variants.  The small dense products (Gram matrices, projected problems,
//! core-tensor contractions) use the sequential `gemm`.
//!
//! The element-wise kernels ([`axpy`], [`scal`]) and the row-wise products
//! built on them ([`gemv`], [`gemm`], [`gemm_tn`], the `par_*` variants)
//! run on the runtime-dispatched SIMD layer ([`crate::simd`]) at the
//! process-wide [`KernelIsa::resolved_default`] tier, which is
//! **bit-identical** to the scalar reference by construction (separate
//! mul+add lanes, no reassociation).  [`dot`] and [`nrm2`] are horizontal
//! reductions and deliberately keep the scalar summation order.

use crate::matrix::Matrix;
use crate::simd::{self, KernelIsa};
use rayon::prelude::*;

/// Dot product of two equally sized slices.
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    x.iter().zip(y.iter()).map(|(a, b)| a * b).sum()
}

/// `y += alpha * x`, SIMD-dispatched at the process-default ISA
/// (bit-identical to the scalar loop).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    simd::axpy(KernelIsa::resolved_default(), alpha, x, y);
}

/// `x *= alpha`, SIMD-dispatched (a pure multiply rounds once however it is
/// issued, so every ISA produces identical bits).
#[inline]
pub fn scal(alpha: f64, x: &mut [f64]) {
    simd::scal(KernelIsa::resolved_default(), alpha, x);
}

/// Euclidean norm of a slice.
#[inline]
pub fn nrm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Normalizes `x` to unit Euclidean norm and returns the original norm.
/// Leaves `x` untouched (and returns 0) if its norm is zero.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = nrm2(x);
    if n > 0.0 {
        scal(1.0 / n, x);
    }
    n
}

/// Dense matrix-vector product `y = A x` (sequential).
///
/// SIMD-dispatched with four *rows* per vector — each lane accumulates one
/// row's dot product in exact scalar order (no horizontal reduction), so
/// the result is bit-identical to `y[i] = dot(a.row(i), x)`.
pub fn gemv(a: &Matrix, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.ncols());
    assert_eq!(y.len(), a.nrows());
    simd::gemv(
        KernelIsa::resolved_default(),
        a.as_slice(),
        a.nrows(),
        a.ncols(),
        x,
        y,
    );
}

/// Dense matrix-vector product `y = A x` using rayon over rows.
pub fn par_gemv(a: &Matrix, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.ncols());
    assert_eq!(y.len(), a.nrows());
    y.par_iter_mut()
        .enumerate()
        .for_each(|(i, yi)| *yi = dot(a.row(i), x));
}

/// Dense transposed matrix-vector product `y = Aᵀ x` (sequential).
///
/// Accumulates row-wise so that `A` is only traversed in row-major order.
pub fn gemv_t(a: &Matrix, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.nrows());
    assert_eq!(y.len(), a.ncols());
    y.iter_mut().for_each(|v| *v = 0.0);
    for i in 0..a.nrows() {
        axpy(x[i], a.row(i), y);
    }
}

/// Dense transposed matrix-vector product `y = Aᵀ x` with rayon.
///
/// Each thread accumulates a private `ncols`-length buffer over a chunk of
/// rows; buffers are then reduced.  This mirrors how the paper's distributed
/// `MTxV` computes local partial results followed by an all-to-all reduction.
pub fn par_gemv_t(a: &Matrix, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), a.nrows());
    assert_eq!(y.len(), a.ncols());
    let ncols = a.ncols();
    if a.nrows() == 0 {
        y.iter_mut().for_each(|v| *v = 0.0);
        return;
    }
    let chunk = (a.nrows() / rayon::current_num_threads().max(1)).max(64);
    let acc = (0..a.nrows())
        .into_par_iter()
        .chunks(chunk)
        .map(|rows| {
            let mut local = vec![0.0; ncols];
            for i in rows {
                axpy(x[i], a.row(i), &mut local);
            }
            local
        })
        .reduce(
            || vec![0.0; ncols],
            |mut a, b| {
                axpy(1.0, &b, &mut a);
                a
            },
        );
    y.copy_from_slice(&acc);
}

/// Dense matrix-matrix product `C = A B` (sequential, ikj loop order).
///
/// The inner body is the SIMD-dispatched [`axpy`], so the whole product
/// vectorizes while keeping scalar accumulation order per element.
pub fn gemm(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.ncols(), b.nrows(), "gemm: inner dimensions must agree");
    let mut c = Matrix::zeros(a.nrows(), b.ncols());
    for i in 0..a.nrows() {
        let arow = a.row(i);
        let crow = c.row_mut(i);
        for (k, &aik) in arow.iter().enumerate() {
            if aik != 0.0 {
                axpy(aik, b.row(k), crow);
            }
        }
    }
    c
}

/// Dense matrix-matrix product `C = A B` parallelized over the rows of `A`.
pub fn par_gemm(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.ncols(), b.nrows(), "gemm: inner dimensions must agree");
    let n = b.ncols();
    let rows: Vec<Vec<f64>> = (0..a.nrows())
        .into_par_iter()
        .map(|i| {
            let mut crow = vec![0.0; n];
            for (k, &aik) in a.row(i).iter().enumerate() {
                if aik != 0.0 {
                    axpy(aik, b.row(k), &mut crow);
                }
            }
            crow
        })
        .collect();
    Matrix::from_rows(&rows)
}

/// `C = Aᵀ B` without materializing `Aᵀ`.
///
/// Row-major streaming with the SIMD-dispatched [`axpy`] as the inner body.
pub fn gemm_tn(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.nrows(), b.nrows(), "gemm_tn: row counts must agree");
    let mut c = Matrix::zeros(a.ncols(), b.ncols());
    for i in 0..a.nrows() {
        let arow = a.row(i);
        let brow = b.row(i);
        for (p, &apv) in arow.iter().enumerate() {
            if apv != 0.0 {
                axpy(apv, brow, c.row_mut(p));
            }
        }
    }
    c
}

/// `C = A Bᵀ` without materializing `Bᵀ`.
pub fn gemm_nt(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.ncols(), b.ncols(), "gemm_nt: column counts must agree");
    let mut c = Matrix::zeros(a.nrows(), b.nrows());
    for i in 0..a.nrows() {
        let arow = a.row(i);
        for j in 0..b.nrows() {
            c[(i, j)] = dot(arow, b.row(j));
        }
    }
    c
}

/// Symmetric rank-k update: returns the Gram matrix `G = Aᵀ A`.
pub fn gram(a: &Matrix) -> Matrix {
    gemm_tn(a, a)
}

/// Column-wise Euclidean norms of a matrix.
pub fn column_norms(a: &Matrix) -> Vec<f64> {
    let mut norms = vec![0.0; a.ncols()];
    for i in 0..a.nrows() {
        for (j, &v) in a.row(i).iter().enumerate() {
            norms[j] += v * v;
        }
    }
    norms.iter_mut().for_each(|n| *n = n.sqrt());
    norms
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn assert_mat_eq(a: &Matrix, b: &Matrix, tol: f64) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!(approx_eq(*x, *y, tol), "{x} vs {y}");
        }
    }

    #[test]
    fn dot_axpy_nrm2() {
        let x = [1.0, 2.0, 3.0];
        let y = [4.0, 5.0, 6.0];
        assert_eq!(dot(&x, &y), 32.0);
        let mut z = y;
        axpy(2.0, &x, &mut z);
        assert_eq!(z, [6.0, 9.0, 12.0]);
        assert!((nrm2(&[3.0, 4.0]) - 5.0).abs() < 1e-14);
    }

    #[test]
    fn normalize_unit() {
        let mut x = vec![3.0, 4.0];
        let n = normalize(&mut x);
        assert!((n - 5.0).abs() < 1e-14);
        assert!((nrm2(&x) - 1.0).abs() < 1e-14);
        let mut z = vec![0.0, 0.0];
        assert_eq!(normalize(&mut z), 0.0);
    }

    #[test]
    fn gemv_known() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let x = [1.0, -1.0];
        let mut y = vec![0.0; 3];
        gemv(&a, &x, &mut y);
        assert_eq!(y, vec![-1.0, -1.0, -1.0]);
    }

    #[test]
    fn gemv_t_known() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let x = [1.0, 1.0];
        let mut y = vec![0.0; 2];
        gemv_t(&a, &x, &mut y);
        assert_eq!(y, vec![4.0, 6.0]);
    }

    #[test]
    fn parallel_matches_sequential_gemv() {
        let a = Matrix::random(200, 37, 3);
        let x: Vec<f64> = (0..37).map(|i| i as f64 * 0.1).collect();
        let mut y1 = vec![0.0; 200];
        let mut y2 = vec![0.0; 200];
        gemv(&a, &x, &mut y1);
        par_gemv(&a, &x, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            assert!(approx_eq(*u, *v, 1e-12));
        }
    }

    #[test]
    fn parallel_matches_sequential_gemv_t() {
        let a = Matrix::random(211, 17, 5);
        let x: Vec<f64> = (0..211).map(|i| (i % 7) as f64 - 3.0).collect();
        let mut y1 = vec![0.0; 17];
        let mut y2 = vec![0.0; 17];
        gemv_t(&a, &x, &mut y1);
        par_gemv_t(&a, &x, &mut y2);
        for (u, v) in y1.iter().zip(&y2) {
            assert!(approx_eq(*u, *v, 1e-10));
        }
    }

    #[test]
    fn par_gemv_t_empty_rows() {
        let a = Matrix::zeros(0, 4);
        let x: Vec<f64> = vec![];
        let mut y = vec![1.0; 4];
        par_gemv_t(&a, &x, &mut y);
        assert_eq!(y, vec![0.0; 4]);
    }

    #[test]
    fn gemm_identity() {
        let a = Matrix::random(4, 4, 11);
        let i = Matrix::identity(4);
        assert_mat_eq(&gemm(&a, &i), &a, 1e-14);
        assert_mat_eq(&gemm(&i, &a), &a, 1e-14);
    }

    #[test]
    fn gemm_known_small() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = gemm(&a, &b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn par_gemm_matches_gemm() {
        let a = Matrix::random(33, 21, 1);
        let b = Matrix::random(21, 17, 2);
        assert_mat_eq(&gemm(&a, &b), &par_gemm(&a, &b), 1e-12);
    }

    #[test]
    fn gemm_tn_matches_explicit_transpose() {
        let a = Matrix::random(10, 6, 3);
        let b = Matrix::random(10, 4, 4);
        assert_mat_eq(&gemm_tn(&a, &b), &gemm(&a.transpose(), &b), 1e-12);
    }

    #[test]
    fn gemm_nt_matches_explicit_transpose() {
        let a = Matrix::random(7, 5, 8);
        let b = Matrix::random(9, 5, 9);
        assert_mat_eq(&gemm_nt(&a, &b), &gemm(&a, &b.transpose()), 1e-12);
    }

    #[test]
    fn gram_is_symmetric() {
        let a = Matrix::random(20, 6, 77);
        let g = gram(&a);
        assert_eq!(g.shape(), (6, 6));
        for i in 0..6 {
            for j in 0..6 {
                assert!(approx_eq(g[(i, j)], g[(j, i)], 1e-12));
            }
        }
    }

    #[test]
    fn column_norms_match_cols() {
        let a = Matrix::random(15, 3, 21);
        let norms = column_norms(&a);
        for j in 0..3 {
            let col = a.col(j);
            assert!(approx_eq(norms[j], nrm2(&col), 1e-12));
        }
    }
}
