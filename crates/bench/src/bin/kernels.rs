//! Microbenchmarks of the runtime-dispatched SIMD kernel layer.
//!
//! Sweeps the hot TTMc kernels — `axpy` (the arity-1 Kronecker accumulate),
//! `scaled_outer2` (arity 2), `scaled_outer3` (the order-4 micro-kernel)
//! and the materialized `accumulate_scaled_kron` (arity ≥ 3) — over a grid
//! of rank sizes that includes non-multiple-of-4 lengths (5, 7, 9, 15, 31),
//! so the remainder handling is measured, not just the full-lane bodies.
//! Every `(kernel, rank)` cell runs once per *explicitly forced* ISA tier
//! ([`KernelIsa::Scalar`], [`KernelIsa::Avx2`], [`KernelIsa::Fma`] — tiers
//! the host lacks are skipped), bypassing both the `TUCKER_KERNEL`
//! environment override and the hardware auto-detection so the numbers
//! compare kernels, not dispatch policy.
//!
//! Before timing, every AVX2 cell is checked **bitwise** against its scalar
//! twin on identical inputs — the default-tier contract (vector lanes
//! perform the same multiply-then-add as the scalar loop, no FMA
//! contraction, no reordered reductions) is asserted here on every run, not
//! just in the test suite.  A mismatch aborts the bin.
//!
//! Machine-readable output goes to `BENCH_kernels.json` (override with
//! `--out <path>`), including the host's `cpu_features` so a 1.0x speedup
//! on an AVX2-less host is interpretable.  With `--check` the bin doubles
//! as the SIMD perf gate: it exits nonzero unless the median single-thread
//! AVX2 speedup of `scaled_outer2` and `scaled_outer3` over forced scalar,
//! across the rank ≥ 8 cells, reaches 1.3x — skipped gracefully (exit 0
//! with a notice) on hosts without AVX2, where there is nothing to gate.
//!
//! Run with `cargo run --release -p bench --bin kernels`.

use bench::{cpu_features_json, print_header};
use linalg::simd::{self, AlignedVec, KernelIsa};
use sptensor::kron::accumulate_scaled_kron_isa;
use std::time::Instant;

/// Rank grid: powers of two for the full-lane fast path, odd sizes for the
/// 1–3-element remainders, and the rank-8/16/32 sizes the solver's TTMc
/// actually runs at.
const RANKS: [usize; 10] = [4, 5, 7, 8, 9, 12, 15, 16, 31, 32];

/// `--check`: required median AVX2 speedup of the outer-product kernels
/// over forced scalar at rank ≥ 8.
const REQUIRED_SPEEDUP: f64 = 1.3;

/// Minimum rank a cell must have to count toward the `--check` gate (below
/// this the buffers are too small for SIMD to matter).
const GATE_MIN_RANK: usize = 8;

/// Target wall time per measured batch; long enough to dominate timer
/// resolution, short enough that the full sweep stays in seconds.
const TARGET_SECONDS: f64 = 0.01;

/// Timing repetitions per cell.  The ISAs are measured **interleaved** —
/// scalar, avx2, fma, scalar, … — and each ISA reports its minimum, so
/// slow frequency drift (turbo decay, hypervisor steal on a shared vCPU)
/// hits every tier equally instead of flattering whichever ran first.
const REPEATS: usize = 5;

/// Deterministic pseudo-random data in `[-0.5, 0.5)`.
fn lcg_data(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        })
        .collect()
}

/// Deterministic pseudo-random data in a fresh [`AlignedVec`].
fn lcg_aligned(n: usize, seed: u64) -> AlignedVec {
    let mut buf = AlignedVec::zeros(n);
    buf.copy_from_slice(&lcg_data(n, seed));
    buf
}

/// One benchmarked kernel shape at one rank: inputs are owned so a single
/// closure-free `call` can run it at any ISA against any output buffer.
/// All buffers are 64-byte aligned ([`AlignedVec`]), matching how a tuned
/// caller should allocate long-lived accumulators — unaligned buffers pay
/// a cache-line-split penalty that measures allocator luck, not kernels.
struct Case {
    kernel: &'static str,
    rank: usize,
    out_len: usize,
    flops_per_call: u64,
    alpha: f64,
    u: AlignedVec,
    v: AlignedVec,
    w: AlignedVec,
}

impl Case {
    fn new(kernel: &'static str, rank: usize, seed: u64) -> Case {
        let r = rank;
        let (out_len, flops, ul, vl, wl) = match kernel {
            // axpy over a TTMc-row-sized vector (rank² for a 3-mode result).
            "axpy" => (r * r, 2 * (r * r) as u64, r * r, 0, 0),
            "scaled_outer2" => (r * r, (r + 2 * r * r) as u64, r, r, 0),
            // Per output element: t = p·w, acc += x·t (3 flops) plus the
            // r² hoisted p = α·u coefficients… the outer2-style count.
            "scaled_outer3" => (r * r * r, (r * r + 3 * r * r * r) as u64, r, r, r),
            // Materialize u ⊗ v ⊗ w, then axpy it.
            "kron3_materialized" => (
                r * r * r,
                (r + r * r + r * r * r) as u64 + 2 * (r * r * r) as u64,
                r,
                r,
                r,
            ),
            other => unreachable!("unknown kernel {other}"),
        };
        Case {
            kernel,
            rank,
            out_len,
            flops_per_call: flops,
            alpha: 0.7315,
            u: lcg_aligned(ul, seed ^ 0x11),
            v: lcg_aligned(vl, seed ^ 0x22),
            w: lcg_aligned(wl, seed ^ 0x33),
        }
    }

    /// One kernel invocation at `isa`, accumulating into `out` (and using
    /// `scratch` where the kernel needs it).
    fn call(&self, isa: KernelIsa, out: &mut [f64], scratch: &mut [f64]) {
        match self.kernel {
            "axpy" => simd::axpy(isa, self.alpha, &self.u, out),
            "scaled_outer2" => simd::scaled_outer2(isa, self.alpha, &self.u, &self.v, out),
            "scaled_outer3" => simd::scaled_outer3(isa, self.alpha, &self.u, &self.v, &self.w, out),
            "kron3_materialized" => accumulate_scaled_kron_isa(
                isa,
                self.alpha,
                &[&self.u, &self.v, &self.w],
                out,
                scratch,
            ),
            other => unreachable!("unknown kernel {other}"),
        }
    }
}

/// One measured `(kernel, rank, isa)` cell.
struct Cell {
    kernel: &'static str,
    rank: usize,
    out_len: usize,
    isa: &'static str,
    ns_per_call: f64,
    gflops: f64,
    /// This cell's time relative to the same `(kernel, rank)` at forced
    /// scalar (1.0 for the scalar cells themselves).
    speedup_vs_scalar: f64,
}

/// Asserts that `isa` produces bit-identical output to forced scalar on
/// this case (fresh zeroed accumulators, identical inputs).  The scalar
/// reference runs in a deliberately *unaligned* buffer: results must not
/// depend on where the accumulator lives.
fn assert_bitwise_matches_scalar(case: &Case, isa: KernelIsa) {
    let mut backing = vec![0.0f64; case.out_len + 1];
    let reference = &mut backing[1..];
    let mut scratch_a = vec![0.0f64; case.out_len];
    case.call(KernelIsa::Scalar, reference, &mut scratch_a);
    let mut out = AlignedVec::zeros(case.out_len);
    let mut scratch_b = AlignedVec::zeros(case.out_len);
    case.call(isa, &mut out, &mut scratch_b);
    for (i, (a, b)) in reference.iter().zip(out.iter()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{} rank {} diverges from scalar at element {i} under {isa}: {a:e} vs {b:e}",
            case.kernel,
            case.rank,
        );
    }
}

/// Measures one kernel at every ISA, interleaved: calibrates an iteration
/// count that runs for [`TARGET_SECONDS`] (on the scalar tier, so every
/// tier runs the same batch), then cycles scalar → avx2 → fma for
/// [`REPEATS`] rounds and reports each tier's minimum in nanoseconds per
/// call, in the same order as `isas`.  `call` is a monomorphized closure —
/// the timing loop contains the kernel's real dispatch (the per-call ISA
/// branch the TTMc inner loop also pays) and nothing else.
fn measure_cell<F>(out_len: usize, isas: &[KernelIsa], call: F) -> Vec<f64>
where
    F: Fn(KernelIsa, &mut [f64], &mut [f64]),
{
    let mut out = AlignedVec::zeros(out_len);
    let mut scratch = AlignedVec::zeros(out_len);
    // Calibration: double until the batch is measurable, then scale.
    let mut iters = 1u64;
    let per_call = loop {
        let t = Instant::now();
        for _ in 0..iters {
            call(KernelIsa::Scalar, &mut out, &mut scratch);
        }
        let elapsed = t.elapsed().as_secs_f64();
        if elapsed > 1e-3 {
            break elapsed / iters as f64;
        }
        iters *= 2;
    };
    let iters = ((TARGET_SECONDS / per_call) as u64).max(1);
    let mut best = vec![f64::INFINITY; isas.len()];
    for _ in 0..REPEATS {
        for (slot, &isa) in isas.iter().enumerate() {
            // Fresh accumulator per batch keeps the values bounded.
            out.iter_mut().for_each(|x| *x = 0.0);
            let t = Instant::now();
            for _ in 0..iters {
                call(isa, &mut out, &mut scratch);
            }
            best[slot] = best[slot].min(t.elapsed().as_secs_f64() / iters as f64 * 1e9);
        }
    }
    best
}

/// Dispatches `measure_cell` with a monomorphized closure per kernel, so
/// the timed loop never matches on the kernel name.
fn measure_case(case: &Case, isas: &[KernelIsa]) -> Vec<f64> {
    match case.kernel {
        "axpy" => measure_cell(case.out_len, isas, |isa, out, _s| {
            simd::axpy(isa, case.alpha, &case.u, out)
        }),
        "scaled_outer2" => measure_cell(case.out_len, isas, |isa, out, _s| {
            simd::scaled_outer2(isa, case.alpha, &case.u, &case.v, out)
        }),
        "scaled_outer3" => measure_cell(case.out_len, isas, |isa, out, _s| {
            simd::scaled_outer3(isa, case.alpha, &case.u, &case.v, &case.w, out)
        }),
        "kron3_materialized" => measure_cell(case.out_len, isas, |isa, out, s| {
            accumulate_scaled_kron_isa(isa, case.alpha, &[&case.u, &case.v, &case.w], out, s)
        }),
        other => unreachable!("unknown kernel {other}"),
    }
}

fn to_json(host_cpus: usize, cells: &[Cell]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"kernels\",\n");
    out.push_str("  \"command\": \"cargo run --release -p bench --bin kernels\",\n");
    out.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    out.push_str(&cpu_features_json());
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"rank\": {}, \"out_len\": {}, \"isa\": \"{}\", \
             \"ns_per_call\": {:.2}, \"gflops\": {:.3}, \"speedup_vs_scalar\": {:.4}}}{}\n",
            c.kernel,
            c.rank,
            c.out_len,
            c.isa,
            c.ns_per_call,
            c.gflops,
            c.speedup_vs_scalar,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

struct BinArgs {
    out: String,
    check: bool,
}

fn bin_args() -> BinArgs {
    let mut out = BinArgs {
        out: "BENCH_kernels.json".to_string(),
        check: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => {
                out.out = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path argument");
                    std::process::exit(2);
                })
            }
            "--check" => out.check = true,
            _ => {}
        }
    }
    out
}

/// Median of a cell subset's speedups (the `--check` statistic: robust to
/// one noisy rank without letting a systematic regression through).
fn median(mut values: Vec<f64>) -> f64 {
    values.sort_by(|a, b| a.total_cmp(b));
    match values.len() {
        0 => f64::NAN,
        n if n % 2 == 1 => values[n / 2],
        n => 0.5 * (values[n / 2 - 1] + values[n / 2]),
    }
}

/// Applies the `--check` speedup gate; returns the process exit code.
fn check_gate(cells: &[Cell]) -> i32 {
    if !simd::avx2_available() {
        println!("\n--check skipped: host has no AVX2, there is no SIMD speedup to gate");
        return 0;
    }
    let mut ok = true;
    for kernel in ["scaled_outer2", "scaled_outer3"] {
        let speedups: Vec<f64> = cells
            .iter()
            .filter(|c| c.kernel == kernel && c.isa == "avx2" && c.rank >= GATE_MIN_RANK)
            .map(|c| c.speedup_vs_scalar)
            .collect();
        let med = median(speedups);
        let pass = med >= REQUIRED_SPEEDUP;
        ok &= pass;
        println!(
            "  gate: {kernel:<15} median avx2 speedup at rank >= {GATE_MIN_RANK}: \
             {med:.2}x (need {REQUIRED_SPEEDUP:.2}x) {}",
            if pass { "ok" } else { "FAIL" }
        );
    }
    if ok {
        println!("--check passed");
        0
    } else {
        println!("--check FAILED");
        1
    }
}

fn main() {
    let args = bin_args();
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut isas = vec![KernelIsa::Scalar];
    if simd::avx2_available() {
        isas.push(KernelIsa::Avx2);
    }
    if simd::fma_available() {
        isas.push(KernelIsa::Fma);
    }
    print_header(
        "SIMD kernel microbenchmarks: forced scalar vs AVX2 vs FMA",
        &format!(
            "ranks {RANKS:?}, single thread, {host_cpus} host CPU(s), \
             tiers available here: {}",
            isas.iter()
                .map(|i| i.as_str())
                .collect::<Vec<_>>()
                .join("/")
        ),
    );

    let mut cells: Vec<Cell> = Vec::new();
    for kernel in [
        "axpy",
        "scaled_outer2",
        "scaled_outer3",
        "kron3_materialized",
    ] {
        println!("{kernel}:");
        for (k, &rank) in RANKS.iter().enumerate() {
            let case = Case::new(kernel, rank, 0xbe5c ^ (k as u64) << 8);
            // The default-tier bit-identity contract, asserted on real
            // hardware every time the bench runs.
            if simd::avx2_available() {
                assert_bitwise_matches_scalar(&case, KernelIsa::Avx2);
            }
            let timings = measure_case(&case, &isas);
            let scalar_ns = timings[0];
            for (&isa, &ns) in isas.iter().zip(timings.iter()) {
                let speedup = scalar_ns / ns;
                println!(
                    "  rank {rank:>2} ({:>5} out) {:<6} {:>9.1} ns/call, {:>6.2} gflop/s, \
                     {speedup:>5.2}x vs scalar",
                    case.out_len,
                    isa.as_str(),
                    ns,
                    case.flops_per_call as f64 / ns,
                );
                cells.push(Cell {
                    kernel,
                    rank,
                    out_len: case.out_len,
                    isa: isa.as_str(),
                    ns_per_call: ns,
                    gflops: case.flops_per_call as f64 / ns,
                    speedup_vs_scalar: speedup,
                });
            }
        }
    }

    std::fs::write(&args.out, to_json(host_cpus, &cells)).expect("write BENCH_kernels.json");
    println!("\nwrote {} ({} cells)", args.out, cells.len());

    if args.check {
        std::process::exit(check_gate(&cells));
    }
}
