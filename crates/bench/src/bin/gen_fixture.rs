//! Regenerates the committed golden-test fixture tensor
//! (`crates/bench/tests/fixtures/golden.tns`).  The fixture is a small
//! NELL-profile synthetic tensor with a fixed seed, written with the
//! `# dims:` header so the streamed reader validates every index against
//! the declared shape.  Run from the workspace root:
//!
//! ```text
//! cargo run -p bench --bin gen_fixture
//! ```
//!
//! After changing the fixture, re-bless the table snapshots with
//! `GOLDEN_BLESS=1 cargo test -p bench --test tables_golden`.

use datagen::{DatasetProfile, ProfileName};
use sptensor::io::write_tns_file_with_header;

fn main() {
    let tensor = DatasetProfile::new(ProfileName::Nell).generate(500, 7);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden.tns");
    write_tns_file_with_header(&tensor, path).expect("write fixture");
    println!(
        "wrote {} ({} nonzeros, dims {:?})",
        path,
        tensor.nnz(),
        tensor.dims()
    );
}
