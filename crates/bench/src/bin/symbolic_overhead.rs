//! Regenerates the symbolic-TTMc overhead numbers quoted in §V of the
//! paper: in a 256-way fine-hp run of 5 HOOI iterations, the symbolic TTMc
//! took 14 %, 12 %, 19 % and 5 % of the total execution time for Delicious,
//! Flickr, Netflix and NELL.
//!
//! The reproduction measures the real shared-memory solver (symbolic cost
//! is a per-rank preprocessing pass, so its *relative* share against 5
//! iterations is architecture independent to first order).

use bench::{print_header, profile_tensor, table_nnz};
use datagen::ProfileName;
use hooi::{PlanOptions, TuckerConfig, TuckerSolver};

fn main() {
    let nnz = table_nnz();
    print_header(
        "Symbolic TTMc overhead (paper §V)",
        &format!("Share of total time spent in the symbolic TTMc for 5 HOOI iterations, ~{nnz} nonzeros."),
    );

    println!(
        "{:<12} {:>14} {:>16} {:>12} {:>10}",
        "Tensor", "symbolic (s)", "iterations (s)", "share (%)", "paper (%)"
    );
    let paper = [
        (ProfileName::Delicious, 14.0),
        (ProfileName::Flickr, 12.0),
        (ProfileName::Netflix, 19.0),
        (ProfileName::Nell, 5.0),
    ];
    for (name, paper_pct) in paper {
        let (profile, tensor) = profile_tensor(name, nnz, 42);
        let config = TuckerConfig::new(profile.paper_ranks().to_vec())
            .max_iterations(5)
            .fit_tolerance(-1.0)
            .seed(11);
        let mut solver = TuckerSolver::plan(&tensor, PlanOptions::new()).expect("plan failed");
        let result = solver.solve(&config).expect("solve failed");
        let symbolic = solver.symbolic_time().as_secs_f64();
        let iterations = result.timings.iteration_time().as_secs_f64();
        let share = 100.0 * symbolic / (symbolic + iterations);
        println!(
            "{:<12} {:>14.3} {:>16.3} {:>12.1} {:>10.1}",
            name.as_str(),
            symbolic,
            iterations,
            share,
            paper_pct
        );
    }
    println!();
    println!("The symbolic step is reusable across iterations and across rank configurations —");
    println!("a planned TuckerSolver session pays it once and every further solve reports zero");
    println!("symbolic time — the paper's argument for hoisting it.");
}
