//! Regenerates the paper's single-core MET comparison (§V, text):
//! "on a random tensor of size 10K × 10K × 10K with 1M nonzeros, Tucker
//! decomposition with five HOOI iterations took 87.2 seconds in MET and
//! 11.3 seconds in our method (on a single core), including all
//! preprocessing."
//!
//! The reproduction runs both the MET-style TTM-chain solver and the
//! nonzero-based solver on a scaled-down random tensor (default
//! 1K × 1K × 1K with `HYPERTENSOR_NNZ` nonzeros) and reports the ratio.

use bench::{print_header, table_nnz};
use datagen::random_tensor;
use hooi::met::tucker_met;
use hooi::{tucker_hooi, TuckerConfig};
use std::time::Instant;

fn main() {
    let nnz = table_nnz();
    let dims = [1000usize, 1000, 1000];
    print_header(
        "MET comparison (paper §V)",
        &format!(
            "Random tensor {}x{}x{} with {} nonzeros, ranks 10x10x10, 5 HOOI iterations.\n\
             Paper (full scale, single core): MET 87.2 s vs HyperTensor 11.3 s (7.7x).",
            dims[0], dims[1], dims[2], nnz
        ),
    );

    let tensor = random_tensor(&dims, nnz, 2016);
    let config = TuckerConfig::new(vec![10, 10, 10])
        .max_iterations(5)
        .fit_tolerance(-1.0)
        .seed(7);

    let t0 = Instant::now();
    let ours = tucker_hooi(&tensor, &config).expect("HOOI failed");
    let ours_time = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let met = tucker_met(&tensor, &config).expect("MET failed");
    let met_time = t1.elapsed().as_secs_f64();

    println!("{:<28} {:>12} {:>12}", "solver", "time (s)", "final fit");
    println!(
        "{:<28} {:>12.2} {:>12.4}",
        "nonzero-based HOOI (ours)",
        ours_time,
        ours.final_fit()
    );
    println!(
        "{:<28} {:>12.2} {:>12.4}",
        "MET-style TTM chain",
        met_time,
        met.final_fit()
    );
    println!();
    println!(
        "speedup of the nonzero-based formulation: {:.1}x (paper reports 7.7x vs Matlab MET)",
        met_time / ours_time.max(1e-9)
    );
    println!(
        "breakdown (ours): symbolic {:.2}s, TTMc {:.2}s, TRSVD {:.2}s, core {:.2}s",
        ours.timings.symbolic.as_secs_f64(),
        ours.timings.ttmc.as_secs_f64(),
        ours.timings.trsvd.as_secs_f64(),
        ours.timings.core.as_secs_f64()
    );
}
