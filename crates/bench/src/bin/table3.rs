//! Regenerates Table III of the paper: per-mode computation and
//! communication statistics of one HOOI iteration on the Flickr tensor with
//! 256 MPI ranks, for all four partitioning configurations.
//!
//! `W_TTMc` is the number of nonzeros a rank processes in that mode's TTMc,
//! `W_TRSVD` the number of (partial) matricized-tensor rows it multiplies in
//! the TRSVD solver, and `Comm. vol.` the words it sends plus receives for
//! that mode (factor rows plus the fine-grain vector-entry merges).

use bench::{
    cli_args, cli_tensor, format_kilo, paper_configurations, print_header, profile_tensor,
    run_requested_check, sim_config, table_nnz,
};
use datagen::ProfileName;
use distsim::stats::{iteration_stats, ModeRankStats, DEFAULT_TRSVD_APPLICATIONS};
use distsim::DistributedSetup;

fn main() {
    let args = cli_args();
    // A supplied tensor is usually much smaller than the paper's Flickr
    // run, so its breakdown uses a modest rank count.
    let (label, tensor, ranks, num_ranks, from_cli) = match cli_tensor(&args) {
        Some((label, tensor, ranks)) => (label, tensor, ranks, 16usize, true),
        None => {
            let nnz = table_nnz();
            let (profile, tensor) = profile_tensor(ProfileName::Flickr, nnz, 42);
            let ranks = profile.paper_ranks().to_vec();
            ("Flickr".to_string(), tensor, ranks, 256usize, false)
        }
    };
    if from_cli {
        print_header(
            &format!("Table III — per-mode statistics, '{label}', {num_ranks} ranks"),
            "Supplied tensor; max / avg over ranks.",
        );
    } else {
        let nnz = table_nnz();
        print_header(
            "Table III — per-mode statistics, Flickr profile, 256 ranks",
            &format!("Synthetic Flickr-profile tensor with ~{nnz} nonzeros; max / avg over ranks."),
        );
    }

    println!(
        "{:<12} {:>4} {:>10} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "partition",
        "mode",
        "WTTMc max",
        "WTTMc avg",
        "WTRSVD max",
        "WTRSVD avg",
        "Comm max",
        "Comm avg"
    );
    for (grain, method) in paper_configurations() {
        let config = sim_config(num_ranks, grain, method, &ranks);
        let setup = DistributedSetup::build(&tensor, &config);
        let stats = iteration_stats(&tensor, &setup, DEFAULT_TRSVD_APPLICATIONS);
        for (mode, m) in stats.modes.iter().enumerate() {
            println!(
                "{:<12} {:>4} {:>10} {:>10} {:>10} {:>10} {:>12} {:>12}",
                if mode == 0 {
                    config.label()
                } else {
                    String::new()
                },
                mode + 1,
                format_kilo(ModeRankStats::max(&m.ttmc_nonzeros) as f64),
                format_kilo(ModeRankStats::avg(&m.ttmc_nonzeros)),
                format_kilo(ModeRankStats::max(&m.trsvd_rows) as f64),
                format_kilo(ModeRankStats::avg(&m.trsvd_rows)),
                format_kilo(ModeRankStats::max(&m.comm_volume) as f64),
                format_kilo(ModeRankStats::avg(&m.comm_volume)),
            );
        }
        println!();
    }
    if from_cli {
        run_requested_check(&args, &tensor, &ranks);
    } else {
        println!("Expected shape (paper): fine-grain W_TTMc perfectly balanced in every mode;");
        println!("coarse-grain W_TTMc heavily imbalanced in mode 4; fine-hp communication far");
        println!("below fine-rd; fine-hp average W_TRSVD close to the coarse-grain value.");
    }
}
