//! Static versus dynamic scheduling on the Zipf-skewed dataset profiles.
//!
//! Two complementary views of the same question — does the persistent
//! pool's chunked work stealing beat the old static equal-block splitting
//! on skewed update-list distributions?
//!
//! 1. **Deterministic model**: per-mode max-worker-load of both policies
//!    over the real update-list lengths (machine-independent; this is what
//!    the CI-facing test in `bench::scheduling` gates on).
//! 2. **Measured wall clock**: the numeric TTMc kernel timed on two real
//!    pools of identical width, one built with `SchedulePolicy::Static`,
//!    one with the default work-stealing policy.  On a single-core host
//!    the two collapse to the same sequential code path — the model is the
//!    signal there.
//!
//! Run with `cargo run --release -p bench --bin scheduling`; scale the
//! nonzero budget with `HYPERTENSOR_NNZ`.

use bench::scheduling::{
    dynamic_chunked_schedule, shim_chunk_size, static_block_schedule, update_list_costs,
};
use bench::{cli_args, cli_tensor, print_header, profile_tensor, table_nnz};
use datagen::ProfileName;
use hooi::hosvd::random_factors;
use hooi::symbolic::SymbolicTtmc;
use hooi::ttmc::ttmc_mode;
use rayon::{SchedulePolicy, ThreadPoolBuilder};
use sptensor::SparseTensor;
use std::time::Instant;

fn main() {
    let nnz = table_nnz();
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = hw.min(4);
    print_header(
        "Static vs dynamic scheduling on skewed profiles",
        &format!(
            "update-list load model at 8 workers + measured TTMc at {threads} threads \
             (host has {hw} hardware threads), ~{nnz} nonzeros per tensor"
        ),
    );

    let static_pool = ThreadPoolBuilder::new()
        .num_threads(threads)
        .schedule_policy(SchedulePolicy::Static)
        .build()
        .expect("static pool");
    let dynamic_pool = ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("dynamic pool");

    println!(
        "{:<12} {:>4} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "tensor", "mode", "rows", "imb-static", "imb-dynamic", "ms-static", "ms-dynamic"
    );
    // Either the real `.tns` tensor named on the command line (ROADMAP
    // "Large-scale validation") or the four synthetic paper profiles.
    let inputs: Vec<(String, SparseTensor, Vec<usize>)> = match cli_tensor(&cli_args()) {
        Some(input) => vec![input],
        None => ProfileName::all()
            .iter()
            .map(|&name| {
                let (profile, tensor) = profile_tensor(name, nnz, 42);
                (
                    name.as_str().to_string(),
                    tensor,
                    profile.paper_ranks().to_vec(),
                )
            })
            .collect(),
    };
    for (label, tensor, ranks) in &inputs {
        let sym = SymbolicTtmc::build(tensor);
        let factors = random_factors(tensor.dims(), ranks, 7);
        for mode in 0..tensor.order() {
            let costs = update_list_costs(sym.mode(mode));
            let model_workers = 8;
            let s = static_block_schedule(&costs, model_workers);
            let d = dynamic_chunked_schedule(
                &costs,
                model_workers,
                shim_chunk_size(costs.len(), model_workers),
            );

            let time_with = |pool: &rayon::ThreadPool| -> f64 {
                pool.install(|| {
                    // One warm-up, then best of three.
                    let _ = ttmc_mode(tensor, sym.mode(mode), &factors, mode);
                    (0..3)
                        .map(|_| {
                            let t0 = Instant::now();
                            let _ = ttmc_mode(tensor, sym.mode(mode), &factors, mode);
                            t0.elapsed().as_secs_f64() * 1e3
                        })
                        .fold(f64::INFINITY, f64::min)
                })
            };
            let ms_static = time_with(&static_pool);
            let ms_dynamic = time_with(&dynamic_pool);

            println!(
                "{:<12} {:>4} {:>10} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
                label,
                mode,
                costs.len(),
                s.imbalance(),
                d.imbalance(),
                ms_static,
                ms_dynamic
            );
        }
    }
    println!();
    println!(
        "imbalance = max worker load / average worker load under the deterministic model;\n\
         ms columns are measured wall clock of the real kernel under each pool policy."
    );
}
