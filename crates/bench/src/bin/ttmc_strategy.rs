//! Per-mode vs dimension-tree vs auto-picked TTMc: measured wall time,
//! thread scaling, and counted work.
//!
//! For every generated dataset profile (and an optional real `--tns` dump),
//! this bin plans one solver session per `(strategy, threads)` cell, runs a
//! short HOOI solve, and reports
//!
//! * the *counted* per-iteration flops/words of each strategy (the
//!   deterministic [`hooi::DimTree::costs`] / [`hooi::per_mode_costs`]
//!   model — identical on every machine),
//! * the *measured* TTMc seconds per iteration at 1, 2 and 4 threads, plus
//!   the whole-iteration time, with a cross-check that all strategies reach
//!   the same fits within 1e-10 relative, and
//! * per cell, the TTMc speedup over the same strategy's 1-thread run and
//!   the parallel efficiency (`speedup / threads`).
//!
//! The [`hooi::TtmcStrategy::Auto`] rows also print which concrete strategy
//! the plan-time flop model picked for the tensor.
//!
//! Machine-readable output goes to `BENCH_ttmc.json` (override with
//! `--out <path>`), seeding the repo's perf trajectory; CI uploads it as an
//! artifact on every push.  With `--check-scaling <factor>` the bin doubles
//! as the thread-scaling gate: it exits nonzero unless the default (auto)
//! strategy reaches at least `factor`× TTMc speedup at 4 threads on the
//! skewed Delicious profile and on at least 3 of the 4 generated profiles —
//! skipped gracefully (exit 0 with a notice) on hosts with fewer than 4
//! CPUs, where a 4-thread speedup is not measurable.
//!
//! Run with `cargo run --release -p bench --bin ttmc_strategy`; scale the
//! nonzero budget with `--nnz-budget <n>` (default 500 000; the
//! `HYPERTENSOR_NNZ` environment variable is honoured when the flag is
//! absent).

use bench::{cli_args, cli_tensor, cpu_features_json, print_header};
use datagen::{DatasetProfile, ProfileName};
use hooi::symbolic::SymbolicTtmc;
use hooi::{per_mode_costs, DimTree, PlanOptions, TtmcStrategy, TuckerConfig, TuckerSolver};
use sptensor::SparseTensor;

/// Default nonzero budget per generated tensor: large enough that the
/// parallel sweeps dominate plan-time overheads and thread scaling is
/// meaningful, small enough to regenerate in minutes.
const DEFAULT_NNZ_BUDGET: usize = 500_000;

/// Thread counts of the measurement grid.
const THREAD_GRID: [usize; 3] = [1, 2, 4];

/// One measured cell of the strategy × threads grid.
struct Cell {
    dataset: String,
    order: usize,
    nnz: usize,
    ranks: Vec<usize>,
    strategy: &'static str,
    /// The concrete strategy that ran (differs from `strategy` only for
    /// `auto`, which the plan-time cost model resolves per tensor).
    resolved: &'static str,
    /// The concrete SIMD kernel tier the session resolved at plan time
    /// (`scalar`/`avx2`/`fma`; depends on the host and `TUCKER_KERNEL`).
    isa: &'static str,
    threads: usize,
    flops_per_iter: u64,
    words_per_iter: u64,
    ttmc_s_per_it: f64,
    iter_s_per_it: f64,
    /// TTMc speedup of this cell over the same strategy's 1-thread cell.
    speedup_vs_1t: f64,
    /// `speedup_vs_1t / threads`.
    parallel_efficiency: f64,
}

fn strategy_label(strategy: TtmcStrategy) -> &'static str {
    match strategy {
        TtmcStrategy::PerMode => "per_mode",
        TtmcStrategy::DimensionTree => "dimension_tree",
        TtmcStrategy::Auto => "auto",
    }
}

/// Runs one solver session and returns (ttmc s/it, iteration s/it, fits,
/// the concrete strategy the plan resolved to, the resolved kernel ISA).
fn measure(
    tensor: &SparseTensor,
    ranks: &[usize],
    strategy: TtmcStrategy,
    threads: usize,
) -> (f64, f64, Vec<f64>, TtmcStrategy, &'static str) {
    let mut solver = TuckerSolver::plan(
        tensor,
        PlanOptions::new()
            .num_threads(threads)
            .ttmc_strategy(strategy),
    )
    .expect("plan");
    let resolved = solver.ttmc_strategy();
    let isa = solver.kernel_isa().as_str();
    let config = TuckerConfig::new(ranks.to_vec())
        .max_iterations(3)
        .fit_tolerance(-1.0) // fixed iteration count: comparable timings
        .seed(13);
    // Warm-up solve pays pool startup and faults in the buffers; the timed
    // solve reuses everything, which is the steady state a service sees.
    let _ = solver.solve(&config).expect("warm-up solve");
    let result = solver.solve(&config).expect("timed solve");
    let iters = result.iterations.max(1) as f64;
    (
        result.timings.ttmc.as_secs_f64() / iters,
        result.timings.iteration_time().as_secs_f64() / iters,
        result.fits,
        resolved,
        isa,
    )
}

/// Measures the full grid on one tensor, asserting strategy agreement.
fn run_tensor(label: &str, tensor: &SparseTensor, ranks: &[usize], cells: &mut Vec<Cell>) {
    let symbolic = SymbolicTtmc::build(tensor);
    let tree = DimTree::build(tensor);
    let per_mode = per_mode_costs(&symbolic, tensor.nnz(), ranks);
    let tree_costs = tree.costs(ranks);

    println!(
        "\n{label}: order {}, {} nonzeros, ranks {ranks:?}",
        tensor.order(),
        tensor.nnz()
    );
    println!(
        "  counted per-iteration flops: per-mode {} vs tree {} ({:.2}x)",
        per_mode.flops,
        tree_costs.flops,
        per_mode.flops as f64 / tree_costs.flops as f64
    );

    let mut reference_fits: Option<Vec<f64>> = None;
    for strategy in [
        TtmcStrategy::PerMode,
        TtmcStrategy::DimensionTree,
        TtmcStrategy::Auto,
    ] {
        let mut one_thread_ttmc = f64::NAN;
        for threads in THREAD_GRID {
            let (ttmc_s, iter_s, fits, resolved, isa) = measure(tensor, ranks, strategy, threads);
            match &reference_fits {
                None => reference_fits = Some(fits),
                Some(r) => {
                    for (a, b) in fits.iter().zip(r.iter()) {
                        assert!(
                            (a - b).abs() <= 1e-10 * b.abs().max(1e-300),
                            "{label}: {strategy:?} fits diverged from reference"
                        );
                    }
                }
            }
            let costs = match resolved {
                TtmcStrategy::PerMode => per_mode,
                TtmcStrategy::DimensionTree => tree_costs,
                TtmcStrategy::Auto => unreachable!("plans resolve Auto to a concrete strategy"),
            };
            if threads == 1 {
                one_thread_ttmc = ttmc_s;
            }
            let speedup = one_thread_ttmc / ttmc_s;
            let note = if strategy == TtmcStrategy::Auto {
                format!(" [picked {}]", strategy_label(resolved))
            } else {
                String::new()
            };
            println!(
                "  {:<15} {} thread(s): TTMc {:>9.3} ms/it, iteration {:>9.3} ms/it, \
                 {speedup:>5.2}x vs 1T{note}",
                strategy_label(strategy),
                threads,
                ttmc_s * 1e3,
                iter_s * 1e3,
            );
            cells.push(Cell {
                dataset: label.to_string(),
                order: tensor.order(),
                nnz: tensor.nnz(),
                ranks: ranks.to_vec(),
                strategy: strategy_label(strategy),
                resolved: strategy_label(resolved),
                isa,
                threads,
                flops_per_iter: costs.flops,
                words_per_iter: costs.words,
                ttmc_s_per_it: ttmc_s,
                iter_s_per_it: iter_s,
                speedup_vs_1t: speedup,
                parallel_efficiency: speedup / threads as f64,
            });
        }
    }
}

/// Escapes a string for inclusion in a JSON string literal (the dataset
/// label can be a user-supplied `--tns` file stem).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes the cells as a JSON document (no serde in the workspace; the
/// format is flat enough to assemble by hand).
fn to_json(nnz_budget: usize, host_cpus: usize, cells: &[Cell]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"ttmc_strategy\",\n");
    out.push_str("  \"command\": \"cargo run --release -p bench --bin ttmc_strategy\",\n");
    out.push_str(&format!("  \"nnz_budget\": {nnz_budget},\n"));
    out.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    out.push_str(&cpu_features_json());
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let ranks = c
            .ranks
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"order\": {}, \"nnz\": {}, \"ranks\": [{}], \
             \"strategy\": \"{}\", \"resolved\": \"{}\", \"isa\": \"{}\", \"threads\": {}, \
             \"flops_per_iter\": {}, \"words_per_iter\": {}, \"ttmc_s_per_it\": {:e}, \
             \"iter_s_per_it\": {:e}, \"speedup_vs_1t\": {:.4}, \
             \"parallel_efficiency\": {:.4}}}{}\n",
            json_escape(&c.dataset),
            c.order,
            c.nnz,
            ranks,
            c.strategy,
            c.resolved,
            c.isa,
            c.threads,
            c.flops_per_iter,
            c.words_per_iter,
            c.ttmc_s_per_it,
            c.iter_s_per_it,
            c.speedup_vs_1t,
            c.parallel_efficiency,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extra flags of this bin beyond the shared [`cli_args`] ones.
struct BinArgs {
    out: String,
    nnz_budget: usize,
    check_scaling: Option<f64>,
}

/// Parses `--out <path>`, `--nnz-budget <n>` and `--check-scaling <factor>`
/// from the process arguments (anything else passes through to
/// [`cli_args`]).
fn bin_args() -> BinArgs {
    let mut out = BinArgs {
        out: "BENCH_ttmc.json".to_string(),
        nnz_budget: std::env::var("HYPERTENSOR_NNZ")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_NNZ_BUDGET),
        check_scaling: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} requires an argument");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--out" => out.out = value("--out"),
            "--nnz-budget" => {
                let spec = value("--nnz-budget");
                out.nnz_budget = spec.parse().unwrap_or_else(|_| {
                    eprintln!("could not parse --nnz-budget '{spec}' as an integer");
                    std::process::exit(2);
                });
            }
            "--check-scaling" => {
                let spec = value("--check-scaling");
                out.check_scaling = Some(spec.parse().unwrap_or_else(|_| {
                    eprintln!("could not parse --check-scaling '{spec}' as a number");
                    std::process::exit(2);
                }));
            }
            _ => {}
        }
    }
    out
}

/// Applies the `--check-scaling` gate to the measured cells; returns the
/// process exit code.
fn check_scaling_gate(cells: &[Cell], factor: f64, host_cpus: usize) -> i32 {
    if host_cpus < 4 {
        println!(
            "\n--check-scaling skipped: host has {host_cpus} CPU(s), \
             a 4-thread speedup is not measurable here"
        );
        return 0;
    }
    let mut passing = 0usize;
    let mut total = 0usize;
    let mut skewed_ok = false;
    let mut seen = Vec::new();
    for c in cells
        .iter()
        .filter(|c| c.strategy == "auto" && c.threads == 4)
    {
        if seen.contains(&c.dataset) {
            continue;
        }
        seen.push(c.dataset.clone());
        total += 1;
        let ok = c.speedup_vs_1t >= factor;
        passing += ok as usize;
        skewed_ok |= ok && c.dataset == "Delicious";
        println!(
            "  gate: {:<12} auto @ 4T: {:.2}x (need {factor:.2}x) {}",
            c.dataset,
            c.speedup_vs_1t,
            if ok { "ok" } else { "FAIL" }
        );
    }
    // The skewed Delicious profile is the one the weighted scheduling
    // exists for; it must pass, and so must most of the grid.
    let need = (total.max(1) - 1).max(1); // 3 of the 4 generated profiles
    if skewed_ok && passing >= need {
        println!("--check-scaling passed ({passing}/{total} profiles at >= {factor:.2}x)");
        0
    } else {
        println!(
            "--check-scaling FAILED ({passing}/{total} profiles at >= {factor:.2}x, \
             skewed profile ok: {skewed_ok})"
        );
        1
    }
}

fn main() {
    let bin = bin_args();
    let nnz = bin.nnz_budget;
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    print_header(
        "TTMc strategy comparison: per-mode vs dimension tree vs auto",
        &format!(
            "counted flops/words + measured s/it at 1/2/4 threads, \
             ~{nnz} nonzeros per generated tensor, 3 fixed HOOI iterations, \
             {host_cpus} host CPU(s)"
        ),
    );

    let mut cells = Vec::new();
    if let Some((label, tensor, ranks)) = cli_tensor(&cli_args()) {
        run_tensor(&label, &tensor, &ranks, &mut cells);
    } else {
        for name in ProfileName::all() {
            let profile = DatasetProfile::new(name);
            let tensor = profile.generate(nnz, 1);
            run_tensor(name.as_str(), &tensor, profile.paper_ranks(), &mut cells);
        }
    }

    // Wall-time verdict: tree TTMc s/it vs per-mode s/it per dataset, at
    // matching thread counts.
    println!("\nTTMc wall-time speedup (per-mode / tree, same thread count):");
    let mut any_improvement = false;
    let datasets: Vec<String> = {
        let mut seen = Vec::new();
        for c in &cells {
            if !seen.contains(&c.dataset) {
                seen.push(c.dataset.clone());
            }
        }
        seen
    };
    for dataset in &datasets {
        for threads in THREAD_GRID {
            let find = |strategy: &str| {
                cells
                    .iter()
                    .find(|c| {
                        &c.dataset == dataset && c.threads == threads && c.strategy == strategy
                    })
                    .map(|c| c.ttmc_s_per_it)
            };
            if let (Some(base), Some(tree)) = (find("per_mode"), find("dimension_tree")) {
                let speedup = base / tree;
                any_improvement |= speedup > 1.0;
                println!("  {dataset:<12} {threads} thread(s): {speedup:>6.2}x");
            }
        }
    }

    std::fs::write(&bin.out, to_json(nnz, host_cpus, &cells)).expect("write BENCH_ttmc.json");
    println!(
        "\nwrote {} ({} cells); measured improvement on at least one dataset: {any_improvement}",
        bin.out,
        cells.len()
    );

    if let Some(factor) = bin.check_scaling {
        std::process::exit(check_scaling_gate(&cells, factor, host_cpus));
    }
}
