//! Per-mode vs dimension-tree TTMc: measured wall time and counted work.
//!
//! For every generated dataset profile (and an optional real `--tns` dump),
//! this bin plans one solver session per `(strategy, threads)` cell, runs a
//! short HOOI solve, and reports
//!
//! * the *counted* per-iteration flops/words of each strategy (the
//!   deterministic [`hooi::DimTree::costs`] / [`hooi::per_mode_costs`]
//!   model — identical on every machine), and
//! * the *measured* TTMc seconds per iteration at 1 and 4 threads, plus the
//!   whole-iteration time, with a cross-check that both strategies reach
//!   the same fits within 1e-10 relative.
//!
//! Machine-readable output goes to `BENCH_ttmc.json` (override with
//! `--out <path>`), seeding the repo's perf trajectory; CI uploads it as an
//! artifact on every push.
//!
//! Run with `cargo run --release -p bench --bin ttmc_strategy`; scale the
//! nonzero budget with `HYPERTENSOR_NNZ`.

use bench::{cli_args, cli_tensor, print_header, table_nnz};
use datagen::{DatasetProfile, ProfileName};
use hooi::symbolic::SymbolicTtmc;
use hooi::{per_mode_costs, DimTree, PlanOptions, TtmcStrategy, TuckerConfig, TuckerSolver};
use sptensor::SparseTensor;

/// One measured cell of the strategy × threads grid.
struct Cell {
    dataset: String,
    order: usize,
    nnz: usize,
    ranks: Vec<usize>,
    strategy: &'static str,
    threads: usize,
    flops_per_iter: u64,
    words_per_iter: u64,
    ttmc_s_per_it: f64,
    iter_s_per_it: f64,
}

fn strategy_label(strategy: TtmcStrategy) -> &'static str {
    match strategy {
        TtmcStrategy::PerMode => "per_mode",
        TtmcStrategy::DimensionTree => "dimension_tree",
    }
}

/// Runs one solver session and returns (ttmc s/it, iteration s/it, fits).
fn measure(
    tensor: &SparseTensor,
    ranks: &[usize],
    strategy: TtmcStrategy,
    threads: usize,
) -> (f64, f64, Vec<f64>) {
    let mut solver = TuckerSolver::plan(
        tensor,
        PlanOptions::new()
            .num_threads(threads)
            .ttmc_strategy(strategy),
    )
    .expect("plan");
    let config = TuckerConfig::new(ranks.to_vec())
        .max_iterations(3)
        .fit_tolerance(-1.0) // fixed iteration count: comparable timings
        .seed(13);
    // Warm-up solve pays pool startup and faults in the buffers; the timed
    // solve reuses everything, which is the steady state a service sees.
    let _ = solver.solve(&config).expect("warm-up solve");
    let result = solver.solve(&config).expect("timed solve");
    let iters = result.iterations.max(1) as f64;
    (
        result.timings.ttmc.as_secs_f64() / iters,
        result.timings.iteration_time().as_secs_f64() / iters,
        result.fits,
    )
}

/// Measures the full grid on one tensor, asserting strategy agreement.
fn run_tensor(label: &str, tensor: &SparseTensor, ranks: &[usize], cells: &mut Vec<Cell>) {
    let symbolic = SymbolicTtmc::build(tensor);
    let tree = DimTree::build(tensor);
    let per_mode = per_mode_costs(&symbolic, tensor.nnz(), ranks);
    let tree_costs = tree.costs(ranks);

    println!(
        "\n{label}: order {}, {} nonzeros, ranks {ranks:?}",
        tensor.order(),
        tensor.nnz()
    );
    println!(
        "  counted per-iteration flops: per-mode {} vs tree {} ({:.2}x)",
        per_mode.flops,
        tree_costs.flops,
        per_mode.flops as f64 / tree_costs.flops as f64
    );

    let mut reference_fits: Option<Vec<f64>> = None;
    for threads in [1usize, 4] {
        for strategy in [TtmcStrategy::PerMode, TtmcStrategy::DimensionTree] {
            let (ttmc_s, iter_s, fits) = measure(tensor, ranks, strategy, threads);
            match &reference_fits {
                None => reference_fits = Some(fits),
                Some(r) => {
                    for (a, b) in fits.iter().zip(r.iter()) {
                        assert!(
                            (a - b).abs() <= 1e-10 * b.abs().max(1e-300),
                            "{label}: {strategy:?} fits diverged from reference"
                        );
                    }
                }
            }
            let costs = match strategy {
                TtmcStrategy::PerMode => per_mode,
                TtmcStrategy::DimensionTree => tree_costs,
            };
            println!(
                "  {:<15} {} thread(s): TTMc {:>9.3} ms/it, iteration {:>9.3} ms/it",
                strategy_label(strategy),
                threads,
                ttmc_s * 1e3,
                iter_s * 1e3
            );
            cells.push(Cell {
                dataset: label.to_string(),
                order: tensor.order(),
                nnz: tensor.nnz(),
                ranks: ranks.to_vec(),
                strategy: strategy_label(strategy),
                threads,
                flops_per_iter: costs.flops,
                words_per_iter: costs.words,
                ttmc_s_per_it: ttmc_s,
                iter_s_per_it: iter_s,
            });
        }
    }
}

/// Escapes a string for inclusion in a JSON string literal (the dataset
/// label can be a user-supplied `--tns` file stem).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes the cells as a JSON document (no serde in the workspace; the
/// format is flat enough to assemble by hand).
fn to_json(nnz_budget: usize, cells: &[Cell]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"ttmc_strategy\",\n");
    out.push_str("  \"command\": \"cargo run --release -p bench --bin ttmc_strategy\",\n");
    out.push_str(&format!("  \"nnz_budget\": {nnz_budget},\n"));
    out.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let ranks = c
            .ranks
            .iter()
            .map(|r| r.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"dataset\": \"{}\", \"order\": {}, \"nnz\": {}, \"ranks\": [{}], \
             \"strategy\": \"{}\", \"threads\": {}, \"flops_per_iter\": {}, \
             \"words_per_iter\": {}, \"ttmc_s_per_it\": {:e}, \"iter_s_per_it\": {:e}}}{}\n",
            json_escape(&c.dataset),
            c.order,
            c.nnz,
            ranks,
            c.strategy,
            c.threads,
            c.flops_per_iter,
            c.words_per_iter,
            c.ttmc_s_per_it,
            c.iter_s_per_it,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parses `--out <path>` (defaults to `BENCH_ttmc.json` in the working
/// directory).
fn out_path() -> String {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--out" {
            return args.next().unwrap_or_else(|| {
                eprintln!("--out requires a path argument");
                std::process::exit(2);
            });
        }
    }
    "BENCH_ttmc.json".to_string()
}

fn main() {
    let nnz = table_nnz();
    print_header(
        "TTMc strategy comparison: per-mode vs dimension tree",
        &format!(
            "counted flops/words + measured s/it at 1 and 4 threads, \
             ~{nnz} nonzeros per generated tensor, 3 fixed HOOI iterations"
        ),
    );

    let mut cells = Vec::new();
    if let Some((label, tensor, ranks)) = cli_tensor(&cli_args()) {
        run_tensor(&label, &tensor, &ranks, &mut cells);
    } else {
        for name in ProfileName::all() {
            let profile = DatasetProfile::new(name);
            let tensor = profile.generate(nnz, 1);
            run_tensor(name.as_str(), &tensor, profile.paper_ranks(), &mut cells);
        }
    }

    // Wall-time verdict: best tree TTMc s/it vs best per-mode s/it per
    // dataset, at matching thread counts.
    println!("\nTTMc wall-time speedup (per-mode / tree, same thread count):");
    let mut any_improvement = false;
    let datasets: Vec<String> = {
        let mut seen = Vec::new();
        for c in &cells {
            if !seen.contains(&c.dataset) {
                seen.push(c.dataset.clone());
            }
        }
        seen
    };
    for dataset in &datasets {
        for threads in [1usize, 4] {
            let find = |strategy: &str| {
                cells
                    .iter()
                    .find(|c| {
                        &c.dataset == dataset && c.threads == threads && c.strategy == strategy
                    })
                    .map(|c| c.ttmc_s_per_it)
            };
            if let (Some(base), Some(tree)) = (find("per_mode"), find("dimension_tree")) {
                let speedup = base / tree;
                any_improvement |= speedup > 1.0;
                println!("  {dataset:<12} {threads} thread(s): {speedup:>6.2}x");
            }
        }
    }

    let path = out_path();
    std::fs::write(&path, to_json(nnz, &cells)).expect("write BENCH_ttmc.json");
    println!(
        "\nwrote {path} ({} cells); measured improvement on at least one dataset: {any_improvement}",
        cells.len()
    );
}
