//! Regenerates Table IV of the paper: relative time of the TTMc, TRSVD and
//! core-tensor steps within one HOOI iteration under the 256-way `fine-hp`
//! partition, for every dataset.

use bench::{
    cli_args, cli_tensor, print_header, profile_tensor, run_requested_check, sim_config, table_nnz,
};
use datagen::ProfileName;
use distsim::{simulate_iteration, DistributedSetup, Grain, MachineModel, PartitionMethod};

fn main() {
    let args = cli_args();
    if let Some((label, tensor, ranks)) = cli_tensor(&args) {
        print_header(
            "Table IV — relative timings of TTMc / TRSVD+comm / core+comm (percent)",
            &format!("Supplied tensor '{label}', fine-hp partition, 32 threads per rank."),
        );
        println!(
            "{:<12} {:>7} {:>10} {:>14} {:>12}",
            "Tensor", "#ranks", "TTMc %", "TRSVD+comm %", "core+comm %"
        );
        let machine = MachineModel::bluegene_q();
        for num_ranks in [4usize, 16] {
            let config = sim_config(num_ranks, Grain::Fine, PartitionMethod::Hypergraph, &ranks);
            let setup = DistributedSetup::build(&tensor, &config);
            let cost = simulate_iteration(
                &tensor,
                &setup,
                &machine,
                distsim::stats::DEFAULT_TRSVD_APPLICATIONS,
            );
            let (ttmc, trsvd, core) = cost.relative_shares();
            println!(
                "{:<12} {:>7} {:>10.1} {:>14.1} {:>12.1}",
                label, num_ranks, ttmc, trsvd, core
            );
        }
        println!();
        run_requested_check(&args, &tensor, &ranks);
        return;
    }

    let nnz = table_nnz();
    // The paper uses 256 ranks on 78–140M-nonzero tensors (~400K nonzeros
    // per rank).  To keep a comparable amount of work per rank on the
    // scaled tensors, the rank count scales with the nonzero budget
    // (256 ranks at 40M nonzeros ≈ 1 rank per ~150K nonzeros), and the
    // 256-rank shares are printed as well for reference.
    let scaled_ranks_count = (nnz / 4_000).clamp(4, 256);
    print_header(
        "Table IV — relative timings of TTMc / TRSVD+comm / core+comm (percent)",
        &format!(
            "fine-hp partition, 32 threads per rank, ~{nnz} nonzeros per tensor.\n\
             Shares shown for {scaled_ranks_count} ranks (work per rank comparable to the paper's 256-rank runs)\n\
             and for the paper's literal 256 ranks (where the scale-down inflates the TRSVD+comm share)."
        ),
    );

    println!(
        "{:<12} {:>7} {:>10} {:>14} {:>12}",
        "Tensor", "#ranks", "TTMc %", "TRSVD+comm %", "core+comm %"
    );
    let machine = MachineModel::bluegene_q();
    for name in [
        ProfileName::Delicious,
        ProfileName::Flickr,
        ProfileName::Nell,
        ProfileName::Netflix,
    ] {
        let (profile, tensor) = profile_tensor(name, nnz, 42);
        let ranks = profile.paper_ranks().to_vec();
        for num_ranks in [scaled_ranks_count, 256] {
            let config = sim_config(num_ranks, Grain::Fine, PartitionMethod::Hypergraph, &ranks);
            let setup = DistributedSetup::build(&tensor, &config);
            let cost = simulate_iteration(
                &tensor,
                &setup,
                &machine,
                distsim::stats::DEFAULT_TRSVD_APPLICATIONS,
            );
            let (ttmc, trsvd, core) = cost.relative_shares();
            println!(
                "{:<12} {:>7} {:>10.1} {:>14.1} {:>12.1}",
                name.as_str(),
                num_ranks,
                ttmc,
                trsvd,
                core
            );
        }
    }
    println!();
    println!("Paper reference: TTMc 75.6/64.6/71.2/27.7 %, TRSVD+comm 19.2/32.6/24.8/71.6 %,");
    println!("core+comm 5.2/2.8/4.0/0.7 % for Delicious/Flickr/NELL/Netflix.  The key shape:");
    println!("TTMc dominates everywhere except Netflix, where TRSVD+comm takes over.");
}
