//! Chaos matrix for the fault-tolerant executor: N seeded [`FaultPlan`]s
//! replayed on both comm backends, each run classified as a clean
//! completion or a typed failure, with wall time against a budget.
//!
//! The displayed claim: *no schedule hangs and no schedule panics*.  Every
//! run either completes bit-identically to the fault-free executor or
//! resolves to `TuckerError::RankFailed` on every rank, within the
//! wall-clock budget derived from the recv deadline.
//!
//! ```text
//! cargo run --release -p bench --bin chaos
//! cargo run --release -p bench --bin chaos -- --plans 40 --check
//! ```
//!
//! Machine-readable output goes to `BENCH_chaos.json` (override with
//! `--out <path>`).  With `--check` the bin is the `chaos-smoke` CI gate:
//! it exits non-zero if any run hangs past budget, panics, completes with
//! wrong bits, or fails without a typed error on some rank.

use distsim::exec::{execute_hooi, execute_hooi_chaos, ChaosRun, ExecOptions};
use distsim::{
    loopback_tcp_available, CommBackend, CommDeadline, DistributedSetup, FaultPlan, Grain,
    PartitionMethod, SimConfig,
};
use hooi::{TuckerConfig, TuckerDecomposition, TuckerError};
use sptensor::SparseTensor;
use std::time::Duration;

/// Per-recv deadline for every chaos run.
const RECV_TIMEOUT: Duration = Duration::from_millis(400);

/// Wall budget per run: covers a worst-case unwind where several ranks
/// each burn a full recv deadline in sequence, plus one injected delay of
/// roughly two deadlines, with slack for loaded CI machines.
const WALL_BUDGET: Duration = Duration::from_secs(30);

struct BinArgs {
    plans: usize,
    base_seed: u64,
    out: String,
    check: bool,
}

fn parse_args() -> BinArgs {
    let mut out = BinArgs {
        plans: 24,
        base_seed: 0xc0ffee,
        out: "BENCH_chaos.json".to_string(),
        check: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--plans" => {
                out.plans = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--plans <count>");
            }
            "--seed" => {
                out.base_seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed <u64>");
            }
            "--out" => out.out = args.next().expect("--out <path>"),
            "--check" => out.check = true,
            other => panic!("unknown argument {other:?}"),
        }
    }
    out
}

/// What one (seed, backend) cell resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Verdict {
    /// No trigger fired; bits matched the fault-free reference.
    CleanIdentical,
    /// No trigger fired but the bits diverged — a gate failure.
    CleanDiverged,
    /// Triggers fired and every rank reported `RankFailed`.
    TypedFailure,
    /// Triggers fired but some rank's verdict was not `RankFailed`.
    UntypedFailure,
    /// The run blew the wall budget.
    OverBudget,
}

impl Verdict {
    fn label(self) -> &'static str {
        match self {
            Verdict::CleanIdentical => "clean",
            Verdict::CleanDiverged => "clean-DIVERGED",
            Verdict::TypedFailure => "typed-failure",
            Verdict::UntypedFailure => "UNTYPED-failure",
            Verdict::OverBudget => "OVER-BUDGET",
        }
    }

    fn passes(self) -> bool {
        matches!(self, Verdict::CleanIdentical | Verdict::TypedFailure)
    }
}

struct Cell {
    seed: u64,
    backend: CommBackend,
    fired: u64,
    verdict: Verdict,
    wall_ms: f64,
}

fn bits_equal(a: &TuckerDecomposition, b: &TuckerDecomposition) -> bool {
    a.fits == b.fits && a.factors == b.factors && a.core.as_slice() == b.core.as_slice()
}

fn classify(run: &ChaosRun, reference: &TuckerDecomposition) -> Verdict {
    if run.wall > WALL_BUDGET {
        return Verdict::OverBudget;
    }
    if run.faults_fired == 0 {
        return match &run.outcome {
            Ok(dec) if bits_equal(dec, reference) => Verdict::CleanIdentical,
            _ => Verdict::CleanDiverged,
        };
    }
    let all_typed = matches!(run.outcome, Err(TuckerError::RankFailed { .. }))
        && run
            .rank_errors
            .iter()
            .all(|e| matches!(e, Some(TuckerError::RankFailed { .. })));
    if all_typed {
        Verdict::TypedFailure
    } else {
        Verdict::UntypedFailure
    }
}

fn run_matrix(tensor: &SparseTensor, args: &BinArgs) -> Vec<Cell> {
    let num_ranks = 3;
    let ranks = vec![3, 2, 2];
    let config = TuckerConfig::new(ranks.clone()).max_iterations(3).seed(11);
    let sim = SimConfig::new(num_ranks, Grain::Fine, PartitionMethod::Random, ranks);
    let setup = DistributedSetup::build(tensor, &sim);

    let mut backends = vec![CommBackend::Channel];
    if loopback_tcp_available() {
        backends.push(CommBackend::Tcp);
    } else {
        eprintln!("loopback sockets unavailable; chaos matrix runs on channels only");
    }

    let mut cells = Vec::new();
    for &backend in &backends {
        let options = ExecOptions::new()
            .backend(backend)
            .deadline(CommDeadline::with_recv_timeout(RECV_TIMEOUT));
        let reference = execute_hooi(tensor, &setup, &config, &options)
            .expect("fault-free reference run")
            .decomposition;
        for i in 0..args.plans {
            let seed = args.base_seed.wrapping_add(i as u64);
            let plan = FaultPlan::seeded(seed, num_ranks, RECV_TIMEOUT);
            let run = execute_hooi_chaos(tensor, &setup, &config, &options, &plan)
                .expect("chaos entry point accepts the configuration");
            cells.push(Cell {
                seed,
                backend,
                fired: run.faults_fired,
                verdict: classify(&run, &reference),
                wall_ms: run.wall.as_secs_f64() * 1e3,
            });
        }
    }
    cells
}

fn to_json(args: &BinArgs, cells: &[Cell]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"chaos\",\n");
    out.push_str(&format!("  \"plans\": {},\n", args.plans));
    out.push_str(&format!("  \"base_seed\": {},\n", args.base_seed));
    out.push_str(&format!(
        "  \"recv_timeout_ms\": {},\n",
        RECV_TIMEOUT.as_millis()
    ));
    out.push_str(&format!(
        "  \"wall_budget_ms\": {},\n",
        WALL_BUDGET.as_millis()
    ));
    out.push_str(&bench::cpu_features_json());
    out.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"seed\": {}, \"backend\": \"{:?}\", \"faults_fired\": {}, \
             \"verdict\": \"{}\", \"wall_ms\": {:.3}}}{}\n",
            c.seed,
            c.backend,
            c.fired,
            c.verdict.label(),
            c.wall_ms,
            if i + 1 == cells.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args = parse_args();
    bench::print_header(
        "Chaos matrix — seeded fault plans vs the fault-tolerant executor",
        &format!(
            "{} seeded plans per backend, 3 ranks, recv deadline {:?}, wall budget {:?}.\n\
             Every run must resolve to a typed RankFailed on all ranks or complete\n\
             bit-identically to the fault-free reference.",
            args.plans, RECV_TIMEOUT, WALL_BUDGET
        ),
    );
    let tensor = datagen::random_tensor(&[16, 13, 11], 450, 29);
    let cells = run_matrix(&tensor, &args);

    println!(
        "{:<12} {:>10} {:>8} {:>18} {:>10}",
        "backend", "seed", "fired", "verdict", "wall-ms"
    );
    for c in &cells {
        println!(
            "{:<12} {:>10} {:>8} {:>18} {:>10.2}",
            format!("{:?}", c.backend),
            c.seed,
            c.fired,
            c.verdict.label(),
            c.wall_ms
        );
    }
    let fired = cells.iter().filter(|c| c.fired > 0).count();
    let typed = cells
        .iter()
        .filter(|c| c.verdict == Verdict::TypedFailure)
        .count();
    let clean = cells
        .iter()
        .filter(|c| c.verdict == Verdict::CleanIdentical)
        .count();
    println!(
        "\n{} cells: {fired} fired ({typed} typed failures), {clean} clean bit-identical",
        cells.len()
    );

    std::fs::write(&args.out, to_json(&args, &cells)).expect("write BENCH_chaos.json");
    println!("wrote {}", args.out);

    if args.check {
        let failures: Vec<_> = cells.iter().filter(|c| !c.verdict.passes()).collect();
        if failures.is_empty() {
            println!("--check passed: every schedule resolved typed or clean within budget");
        } else {
            for c in &failures {
                println!(
                    "--check FAILED: seed {} on {:?} resolved {}",
                    c.seed,
                    c.backend,
                    c.verdict.label()
                );
            }
            std::process::exit(1);
        }
    }
}
