//! Regenerates Table I of the paper: the properties of the experiment
//! tensors, both at the paper's full scale (from the dataset profiles) and
//! at the scale actually generated for this reproduction.

use bench::{
    cli_args, cli_tensor, layout_memory_report, print_header, run_requested_check, table_nnz,
};
use datagen::{DatasetProfile, ProfileName};
use hooi::IndexLayout;
use sptensor::stats::{format_count, tensor_stats};

fn main() {
    let args = cli_args();
    if let Some((label, tensor, ranks)) = cli_tensor(&args) {
        print_header(
            "Table I — properties of the supplied tensor",
            &format!("Loaded '{label}' through the streamed .tns reader."),
        );
        let stats = tensor_stats(&tensor);
        let dims: Vec<String> = tensor.dims().iter().map(|&d| format_count(d)).collect();
        let max_imb = stats
            .modes
            .iter()
            .map(|m| m.imbalance)
            .fold(0.0f64, f64::max);
        println!(
            "{:<12} {:>24} {:>10} {:>8}",
            "Tensor", "dims", "nnz", "max imb"
        );
        println!(
            "{:<12} {:>24} {:>10} {:>8.1}",
            label,
            dims.join(" x "),
            format_count(tensor.nnz()),
            max_imb
        );
        println!();
        println!("Per-mode plan footprint by index layout (per-mode TTMc strategy):");
        for (layout, bytes) in layout_memory_report(&tensor) {
            println!("  {:<12} {:>12} bytes", format!("{layout:?}"), bytes);
        }
        let resolved = IndexLayout::Auto.resolve_for(tensor.order(), tensor.nnz());
        println!("  auto resolves to {resolved:?} for this tensor");
        run_requested_check(&args, &tensor, &ranks);
        return;
    }
    print_header(
        "Table I — tensors used in the experiments",
        "Full-scale shapes come from the paper; the 'generated' columns describe the\n\
         scaled synthetic instances used by the other tables (see DESIGN.md).",
    );

    println!(
        "{:<12} {:>28} {:>10} | {:>24} {:>10} {:>8}",
        "Tensor", "paper dims", "paper nnz", "generated dims", "gen nnz", "max imb"
    );
    let nnz = table_nnz();
    for name in [
        ProfileName::Netflix,
        ProfileName::Nell,
        ProfileName::Delicious,
        ProfileName::Flickr,
    ] {
        let profile = DatasetProfile::new(name);
        let tensor = profile.generate(nnz, 42);
        let stats = tensor_stats(&tensor);
        let paper_dims: Vec<String> = profile.full_dims.iter().map(|&d| format_count(d)).collect();
        let gen_dims: Vec<String> = tensor.dims().iter().map(|&d| format_count(d)).collect();
        let max_imb = stats
            .modes
            .iter()
            .map(|m| m.imbalance)
            .fold(0.0f64, f64::max);
        println!(
            "{:<12} {:>28} {:>10} | {:>24} {:>10} {:>8.1}",
            name.as_str(),
            paper_dims.join(" x "),
            format_count(profile.full_nnz),
            gen_dims.join(" x "),
            format_count(tensor.nnz()),
            max_imb
        );
    }
    println!();
    println!(
        "(max imb = the largest max/mean slice-size ratio over the modes of the generated tensor,"
    );
    println!(" confirming the Zipf-skewed structure the distributed experiments rely on.)");
}
