//! Multi-tenant decomposition-service load replay.
//!
//! Replays a Zipf-skewed request mix ([`datagen::requests`]) against a
//! [`service::DecompositionService`]: several tenants ingest, decompose,
//! predict on and evict a pool of synthetic tensors, with hot tensors
//! receiving most of the traffic.  The bin reports
//!
//! * request latency percentiles (p50/p95/p99, overall and for
//!   decompositions alone) and sustained throughput,
//! * plan-cache behaviour (hit rate, bytes held, pressure evictions), and
//! * fairness: the per-tenant charged-flop spread and the *pick-time
//!   deficit* — how far above the backlogged minimum the scheduler ever
//!   reached when choosing the next tenant (exactly 0 for
//!   cheapest-deficit-first admission).
//!
//! Every event for a tensor is issued by the tensor's *owning* tenant
//! (`tensor mod tenants`), so per-tenant FIFO order implies per-tensor
//! order and the replay's responses are a deterministic function of the
//! mix — under any fair interleaving and any cache state.
//!
//! Machine-readable output goes to `BENCH_service.json` (override with
//! `--out <path>`).  With `--check` the bin doubles as the service's CI
//! gate: it replays the same mix a second time with everything submitted
//! up front (different queue interleaving) and a plan cache squeezed to
//! barely above the largest single plan (forcing pressure evictions and
//! transparent re-plans), and exits nonzero unless
//!
//! * every response is bit-identical between the two replays,
//! * the squeezed replay actually evicted and re-planned, and
//! * the scheduler never picked a tenant above the backlogged minimum.
//!
//! Run with `cargo run --release -p bench --bin service_load`; scale with
//! `--requests/--tensors/--tenants/--threads/--seed`.

use datagen::random_tensor;
use datagen::requests::{request_mix, RequestEvent, RequestKind, RequestMixSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use service::{Completed, DecompositionService, Request, Response, ServiceOptions};
use sptensor::SparseTensor;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// How many requests run A submits before draining the queue — small
/// enough that queueing (and therefore fairness reordering) is visible in
/// the latencies, large enough to keep the pool busy.
const SUBMIT_WINDOW: usize = 8;

struct BinArgs {
    out: String,
    requests: usize,
    tensors: usize,
    tenants: usize,
    threads: usize,
    seed: u64,
    check: bool,
}

fn bin_args() -> BinArgs {
    let mut out = BinArgs {
        out: "BENCH_service.json".to_string(),
        requests: 300,
        tensors: 8,
        tenants: 6,
        threads: 2,
        seed: 1,
        check: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} requires an argument");
                std::process::exit(2);
            })
        };
        let parse = |flag: &str, spec: String| -> usize {
            spec.parse().unwrap_or_else(|_| {
                eprintln!("could not parse {flag} '{spec}' as an integer");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--out" => out.out = value("--out"),
            "--requests" => out.requests = parse("--requests", value("--requests")),
            "--tensors" => out.tensors = parse("--tensors", value("--tensors")),
            "--tenants" => out.tenants = parse("--tenants", value("--tenants")),
            "--threads" => out.threads = parse("--threads", value("--threads")),
            "--seed" => out.seed = parse("--seed", value("--seed")) as u64,
            "--check" => out.check = true,
            _ => {}
        }
    }
    out
}

/// The synthetic tensor pool: small enough that hundreds of decompositions
/// replay in seconds, varied enough that plans have different footprints.
fn tensor_pool(count: usize, seed: u64) -> Vec<Arc<SparseTensor>> {
    (0..count)
        .map(|i| {
            let dims = [28 + 4 * (i % 3), 22 + 3 * (i % 4), 18 + 2 * (i % 5)];
            let nnz = 1_500 + 400 * (i % 4);
            Arc::new(random_tensor(&dims, nnz, seed.wrapping_add(i as u64)))
        })
        .collect()
}

/// The owning tenant of a tensor; every request for the tensor comes from
/// it, making per-tensor order a consequence of per-tenant FIFO order.
fn owner(tensor: usize, tenants: usize) -> String {
    format!("tenant{}", tensor % tenants)
}

/// Maps an abstract mix event to a concrete service request.  Predict
/// queries are drawn per event from the event's own deterministic stream.
fn to_request(
    event: &RequestEvent,
    event_idx: u64,
    pool: &[Arc<SparseTensor>],
    seed: u64,
) -> Request {
    let tensor_id = format!("tensor{}", event.tensor);
    match &event.kind {
        RequestKind::Ingest => Request::Ingest {
            tensor_id,
            tensor: Arc::clone(&pool[event.tensor]),
        },
        RequestKind::Decompose {
            rank,
            max_iters,
            seed,
        } => Request::Decompose {
            tensor_id,
            ranks: vec![*rank; pool[event.tensor].order()],
            seed: *seed,
            max_iters: *max_iters,
            deadline: None,
        },
        RequestKind::Predict { queries } => {
            let dims = pool[event.tensor].dims().to_vec();
            let mut rng = SmallRng::seed_from_u64(
                seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(event_idx + 1),
            );
            let indices = (0..*queries)
                .map(|_| dims.iter().map(|&d| rng.gen_range(0..d)).collect())
                .collect();
            Request::Predict { tensor_id, indices }
        }
        RequestKind::Evict => Request::Evict { tensor_id },
    }
}

/// FNV-1a over a stream of u64 words — the response fingerprint used by
/// the bit-identity gate.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn word(&mut self, w: u64) {
        for shift in [0, 8, 16, 24, 32, 40, 48, 56] {
            self.0 ^= (w >> shift) & 0xff;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn f64s(&mut self, xs: &[f64]) {
        for &x in xs {
            self.word(x.to_bits());
        }
    }
}

/// A response fingerprint: the outcome kind plus the bits of its numeric
/// payload.  Cache-state-dependent fields (`plan_bytes`,
/// `plan_was_cached`) are deliberately excluded — they describe the
/// *cache*, not the response the tenant consumes.
fn fingerprint(completed: &Completed) -> (u8, u64) {
    match &completed.outcome {
        Ok(Response::Ingested { .. }) => (1, 0),
        Ok(Response::Decomposed {
            decomposition,
            truncated,
        }) => {
            let mut h = Fnv::new();
            h.f64s(decomposition.core.as_slice());
            for factor in &decomposition.factors {
                h.f64s(factor.as_slice());
            }
            h.word(decomposition.iterations as u64);
            h.word(*truncated as u64);
            (2, h.0)
        }
        Ok(Response::Predicted { values }) => {
            let mut h = Fnv::new();
            h.f64s(values);
            (3, h.0)
        }
        Ok(Response::Evicted { .. }) => (4, 0),
        Err(e) => {
            let mut h = Fnv::new();
            for b in e.to_string().bytes() {
                h.word(b as u64);
            }
            (5, h.0)
        }
    }
}

struct ReplayResult {
    /// `request_id -> (kind, fingerprint)`; ids equal submission order.
    fingerprints: BTreeMap<u64, (u8, u64)>,
    /// Wall-clock seconds from submit to completion, per request, in
    /// completion order, with the request kind tag.
    latencies: Vec<(u8, f64)>,
    elapsed_s: f64,
    /// Largest plan footprint reported by any ingest (sizing input for the
    /// squeezed replay).
    max_plan_bytes: usize,
    /// Times the scheduler picked a tenant charged above the backlogged
    /// minimum (must be 0) and the worst such overshoot in flops.
    pick_violations: u64,
    max_pick_deficit: u64,
    stats: service::ServiceStats,
}

/// Replays the mix: submit in windows of `window`, drain, measure.  The
/// fairness probe snapshots the backlogged tenants' accounts before every
/// step and checks the scheduler's pick against the minimum.
fn replay(
    events: &[RequestEvent],
    pool: &[Arc<SparseTensor>],
    options: ServiceOptions,
    tenants: usize,
    seed: u64,
    window: usize,
) -> ReplayResult {
    let mut svc = DecompositionService::new(options).expect("service pool");
    let mut fingerprints = BTreeMap::new();
    let mut latencies = Vec::with_capacity(events.len());
    let mut submit_times: BTreeMap<u64, Instant> = BTreeMap::new();
    let mut max_plan_bytes = 0usize;
    let mut pick_violations = 0u64;
    let mut max_pick_deficit = 0u64;
    let t0 = Instant::now();
    let drain = |svc: &mut DecompositionService,
                 submit_times: &mut BTreeMap<u64, Instant>,
                 fingerprints: &mut BTreeMap<u64, (u8, u64)>,
                 latencies: &mut Vec<(u8, f64)>,
                 max_plan_bytes: &mut usize,
                 pick_violations: &mut u64,
                 max_pick_deficit: &mut u64| {
        loop {
            let backlogged = svc.pending_by_tenant();
            if backlogged.is_empty() {
                break;
            }
            let charged = svc.charged_flops().clone();
            let min_charged = backlogged
                .keys()
                .map(|t| charged.get(t).copied().unwrap_or(0))
                .min()
                .unwrap_or(0);
            let completed = svc.step().expect("backlogged service must step");
            let picked = charged.get(&completed.tenant).copied().unwrap_or(0);
            if picked > min_charged {
                *pick_violations += 1;
                *max_pick_deficit = (*max_pick_deficit).max(picked - min_charged);
            }
            if let Ok(Response::Ingested {
                plan_bytes: Some(b),
                ..
            }) = &completed.outcome
            {
                *max_plan_bytes = (*max_plan_bytes).max(*b);
            }
            let submitted = submit_times
                .remove(&completed.request_id)
                .expect("completion for an unsubmitted request");
            let fp = fingerprint(&completed);
            latencies.push((fp.0, submitted.elapsed().as_secs_f64()));
            fingerprints.insert(completed.request_id, fp);
        }
    };
    for (idx, event) in events.iter().enumerate() {
        let request = to_request(event, idx as u64, pool, seed);
        let id = svc.submit(&owner(event.tensor, tenants), request);
        submit_times.insert(id, Instant::now());
        if (idx + 1) % window == 0 {
            drain(
                &mut svc,
                &mut submit_times,
                &mut fingerprints,
                &mut latencies,
                &mut max_plan_bytes,
                &mut pick_violations,
                &mut max_pick_deficit,
            );
        }
    }
    drain(
        &mut svc,
        &mut submit_times,
        &mut fingerprints,
        &mut latencies,
        &mut max_plan_bytes,
        &mut pick_violations,
        &mut max_pick_deficit,
    );
    ReplayResult {
        fingerprints,
        latencies,
        elapsed_s: t0.elapsed().as_secs_f64(),
        max_plan_bytes,
        pick_violations,
        max_pick_deficit,
        stats: svc.stats(),
    }
}

/// Nearest-rank percentile of an unsorted latency slice, in seconds.
fn percentile(latencies: &mut [f64], q: f64) -> f64 {
    if latencies.is_empty() {
        return 0.0;
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((q * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
    latencies[rank - 1]
}

fn to_json(args: &BinArgs, host_cpus: usize, result: &ReplayResult) -> String {
    let stats = &result.stats;
    let mut all: Vec<f64> = result.latencies.iter().map(|&(_, s)| s).collect();
    let mut dec: Vec<f64> = result
        .latencies
        .iter()
        .filter(|&&(kind, _)| kind == 2)
        .map(|&(_, s)| s)
        .collect();
    let spread = stats.fairness_spread();
    // JSON has no Infinity: -1 marks "a tenant was never charged".
    let spread = if spread.is_finite() { spread } else { -1.0 };
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"service_load\",\n");
    out.push_str("  \"command\": \"cargo run --release -p bench --bin service_load\",\n");
    out.push_str(&format!(
        "  \"params\": {{\"requests\": {}, \"tensors\": {}, \"tenants\": {}, \"threads\": {}, \
         \"seed\": {}, \"submit_window\": {SUBMIT_WINDOW}}},\n",
        args.requests, args.tensors, args.tenants, args.threads, args.seed
    ));
    out.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    out.push_str(&bench::cpu_features_json());
    out.push_str(&format!(
        "  \"latency_ms\": {{\"p50\": {:.4}, \"p95\": {:.4}, \"p99\": {:.4}}},\n",
        1e3 * percentile(&mut all, 0.50),
        1e3 * percentile(&mut all, 0.95),
        1e3 * percentile(&mut all, 0.99)
    ));
    out.push_str(&format!(
        "  \"decompose_latency_ms\": {{\"p50\": {:.4}, \"p95\": {:.4}, \"p99\": {:.4}}},\n",
        1e3 * percentile(&mut dec, 0.50),
        1e3 * percentile(&mut dec, 0.95),
        1e3 * percentile(&mut dec, 0.99)
    ));
    out.push_str(&format!(
        "  \"throughput_rps\": {:.2},\n",
        result.latencies.len() as f64 / result.elapsed_s.max(1e-12)
    ));
    out.push_str(&format!(
        "  \"cache\": {{\"hit_rate\": {:.4}, \"hits\": {}, \"misses\": {}, \"evictions\": {}, \
         \"bytes_held\": {}, \"max_plan_bytes\": {}}},\n",
        stats.cache_hit_rate(),
        stats.plan_cache_hits,
        stats.plan_cache_misses,
        stats.evicted_plans.len(),
        stats.plan_cache_bytes,
        result.max_plan_bytes
    ));
    out.push_str(&format!(
        "  \"fairness\": {{\"charged_flop_spread\": {spread:.4}, \"pick_violations\": {}, \
         \"max_pick_deficit_flops\": {}}},\n",
        result.pick_violations, result.max_pick_deficit
    ));
    out.push_str(&format!(
        "  \"requests\": {{\"completed\": {}, \"failed\": {}, \"ingests\": {}, \
         \"decomposes\": {}, \"predicts\": {}, \"evicts\": {}, \"truncated\": {}}}\n",
        stats.completed,
        stats.failed,
        stats.ingests,
        stats.decomposes,
        stats.predicts,
        stats.evicts,
        stats.truncated_decomposes
    ));
    out.push_str("}\n");
    out
}

/// The `--check` gate: replay the same mix with everything submitted up
/// front and the cache squeezed, then demand bit-identical responses plus
/// actual eviction pressure.  Returns the process exit code.
fn check_gate(
    events: &[RequestEvent],
    pool: &[Arc<SparseTensor>],
    args: &BinArgs,
    warm: &ReplayResult,
) -> i32 {
    // Barely above the largest single plan: every plan is admissible (no
    // over-budget failures) but two rarely coexist.
    let squeezed_budget = warm.max_plan_bytes + warm.max_plan_bytes / 2;
    let squeezed = replay(
        events,
        pool,
        ServiceOptions::new()
            .num_threads(args.threads)
            .plan_cache_bytes(squeezed_budget),
        args.tenants,
        args.seed,
        events.len(), // one submission burst: maximal reordering freedom
    );
    let mut mismatches = 0usize;
    for (id, fp) in &warm.fingerprints {
        if squeezed.fingerprints.get(id) != Some(fp) {
            mismatches += 1;
        }
    }
    let evictions = squeezed.stats.evicted_plans.len();
    let replans = squeezed.stats.plan_cache_misses;
    let violations = warm.pick_violations + squeezed.pick_violations;
    println!("\n--check gate (squeezed cache: {squeezed_budget} bytes):");
    println!(
        "  bit-identity: {} of {} responses match across interleaving + cache pressure{}",
        warm.fingerprints.len() - mismatches,
        warm.fingerprints.len(),
        if mismatches == 0 { " ok" } else { " FAIL" }
    );
    println!(
        "  pressure: {evictions} evictions, {replans} re-plans under the squeezed budget {}",
        if evictions > 0 && replans > 0 {
            "ok"
        } else {
            "FAIL (gate exercised nothing)"
        }
    );
    println!(
        "  fairness: {violations} picks above the backlogged minimum {}",
        if violations == 0 { "ok" } else { "FAIL" }
    );
    if mismatches == 0 && evictions > 0 && replans > 0 && violations == 0 {
        println!("--check passed");
        0
    } else {
        println!("--check FAILED");
        1
    }
}

fn main() {
    let args = bin_args();
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    bench::print_header(
        "Decomposition service under multi-tenant load",
        &format!(
            "{} requests, {} tensors, {} tenants, {} threads, Zipf-skewed mix (seed {}), \
             {host_cpus} host CPU(s)",
            args.requests, args.tensors, args.tenants, args.threads, args.seed
        ),
    );
    let pool = tensor_pool(args.tensors, args.seed);
    let events = request_mix(&RequestMixSpec::new(
        args.tensors, // one queue per owning tenant; see `owner`
        args.tensors,
        args.requests,
        args.seed,
    ));
    let warm = replay(
        &events,
        &pool,
        ServiceOptions::new().num_threads(args.threads),
        args.tenants,
        args.seed,
        SUBMIT_WINDOW,
    );
    let stats = &warm.stats;
    println!(
        "replayed {} events in {:.2} s ({:.1} req/s)",
        warm.latencies.len(),
        warm.elapsed_s,
        warm.latencies.len() as f64 / warm.elapsed_s.max(1e-12)
    );
    println!(
        "cache: {:.1}% hit rate, {} evictions, {} bytes held",
        100.0 * stats.cache_hit_rate(),
        stats.evicted_plans.len(),
        stats.plan_cache_bytes
    );
    println!(
        "fairness: {} picks above the backlogged minimum (max deficit {} flops)",
        warm.pick_violations, warm.max_pick_deficit
    );
    for (tenant, flops) in &stats.charged_flops {
        println!("  {tenant:<10} charged {flops:>14} flops");
    }
    std::fs::write(&args.out, to_json(&args, host_cpus, &warm)).expect("write BENCH_service.json");
    println!("wrote {}", args.out);
    if args.check {
        std::process::exit(check_gate(&events, &pool, &args, &warm));
    }
}
