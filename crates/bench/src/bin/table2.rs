//! Regenerates Table II of the paper: strong scaling of the distributed
//! HOOI — time per iteration versus node count for the four configurations
//! `fine-hp`, `fine-rd`, `coarse-hp`, `coarse-bl` on each dataset.
//!
//! Times come from the distributed simulator's cost model applied to the
//! exact per-rank work and communication volumes of each partition (see
//! DESIGN.md); the paper's absolute BlueGene/Q seconds are not expected, but
//! the orderings and scaling shapes are.

use bench::{
    cli_args, cli_tensor, paper_configurations, print_header, profile_tensor, run_requested_check,
    sim_config, table_nnz,
};
use datagen::ProfileName;
use distsim::{simulate_iteration, DistributedSetup, MachineModel};

fn main() {
    let args = cli_args();
    let node_counts = [1usize, 4, 16, 64, 256];
    let machine = MachineModel::bluegene_q();

    if let Some((label, tensor, ranks)) = cli_tensor(&args) {
        print_header(
            "Table II — time per HOOI iteration (simulated seconds) vs node count",
            &format!("Supplied tensor '{label}', 32 threads per node."),
        );
        println!("--- {label} ---");
        println!(
            "{:>10} {:>12} {:>12} {:>12} {:>12}",
            "#nodes", "fine-hp", "fine-rd", "coarse-hp", "coarse-bl"
        );
        for &nodes in &node_counts {
            let mut row = format!("{:>10}", format!("{nodes}x16"));
            for (grain, method) in paper_configurations() {
                let config = sim_config(nodes, grain, method, &ranks);
                let setup = DistributedSetup::build(&tensor, &config);
                let cost = simulate_iteration(
                    &tensor,
                    &setup,
                    &machine,
                    distsim::stats::DEFAULT_TRSVD_APPLICATIONS,
                );
                row.push_str(&format!(" {:>12.4}", cost.total_seconds()));
            }
            println!("{row}");
        }
        println!();
        run_requested_check(&args, &tensor, &ranks);
        return;
    }

    let nnz = table_nnz();
    print_header(
        "Table II — time per HOOI iteration (simulated seconds) vs node count",
        &format!(
            "Each node runs 32 threads (2/core), as in the paper.  Synthetic tensors with ~{nnz} nonzeros."
        ),
    );

    for name in [
        ProfileName::Delicious,
        ProfileName::Flickr,
        ProfileName::Nell,
        ProfileName::Netflix,
    ] {
        let (profile, tensor) = profile_tensor(name, nnz, 42);
        let ranks = profile.paper_ranks().to_vec();
        println!("--- {} ---", name.as_str());
        println!(
            "{:>10} {:>12} {:>12} {:>12} {:>12}",
            "#nodes", "fine-hp", "fine-rd", "coarse-hp", "coarse-bl"
        );
        for &nodes in &node_counts {
            let mut row = format!("{:>10}", format!("{nodes}x16"));
            for (grain, method) in paper_configurations() {
                let config = sim_config(nodes, grain, method, &ranks);
                let setup = DistributedSetup::build(&tensor, &config);
                let cost = simulate_iteration(
                    &tensor,
                    &setup,
                    &machine,
                    distsim::stats::DEFAULT_TRSVD_APPLICATIONS,
                );
                row.push_str(&format!(" {:>12.4}", cost.total_seconds()));
            }
            println!("{row}");
        }
        println!();
    }
    println!("Paper reference (Delicious, 8->256 nodes, fine-hp): 164.9 s -> 12.2 s, 13.5x;");
    println!(
        "fine-hp is ~2x faster than fine-rd and several times faster than the coarse variants."
    );
}
