//! Regenerates Table V of the paper: shared-memory scalability — time per
//! HOOI iteration as the number of threads per node grows from 1 to 32,
//! using the minimum number of nodes that fits each tensor (8/8/1/4 in the
//! paper; the simulation keeps those node counts).
//!
//! Two views are reported:
//!
//! 1. the simulated time from the cost model (which encodes the paper's
//!    observation that TTMc is latency bound and benefits from SMT while
//!    the TRSVD is bandwidth bound and saturates), and
//! 2. a measured wall-clock per-iteration time of the real shared-memory
//!    solver with that many rayon threads (meaningful only up to the number
//!    of physical cores of the host running this binary).

use bench::{
    cli_args, cli_tensor, print_header, profile_tensor, run_requested_check,
    simulated_iteration_seconds, table_nnz,
};
use datagen::ProfileName;
use distsim::{Grain, PartitionMethod};
use hooi::{IndexLayout, PlanOptions, TtmcStrategy, TuckerConfig, TuckerSolver};
use std::time::Instant;

fn measured_seconds_per_iteration(
    tensor: &sptensor::SparseTensor,
    ranks: &[usize],
    threads: usize,
    layout: IndexLayout,
    strategy: TtmcStrategy,
) -> f64 {
    // The session's pool is fixed at plan time, so the thread sweep plans
    // one session per thread count and times the solve (the symbolic
    // analysis stays outside the measurement, as in the paper's tables).
    let options = PlanOptions::new()
        .num_threads(threads)
        .ttmc_strategy(strategy)
        .index_layout(layout);
    let mut solver = TuckerSolver::plan(tensor, options).expect("plan failed");
    let config = TuckerConfig::new(ranks.to_vec())
        .max_iterations(2)
        .fit_tolerance(-1.0)
        .seed(3);
    let t0 = Instant::now();
    let result = solver.solve(&config).expect("solve failed");
    t0.elapsed().as_secs_f64() / result.iterations as f64
}

fn main() {
    let args = cli_args();
    let threads_sweep = [1usize, 2, 4, 8, 16, 32];

    if let Some((label, tensor, ranks)) = cli_tensor(&args) {
        print_header(
            "Table V — shared-memory scalability (time per iteration vs #threads)",
            &format!(
                "Supplied tensor '{label}', fine-hp partition on a single node.\n\
                 'sim' rows use the BG/Q cost model{}.",
                if args.sim_only {
                    "; measured rows skipped (--sim-only)"
                } else {
                    "; 'meas' rows run the real rayon solver on this host"
                }
            ),
        );
        println!("{:>8} {:>14}", "#threads", label);
        for &threads in &threads_sweep {
            let secs = simulated_iteration_seconds(
                &tensor,
                1,
                Grain::Fine,
                PartitionMethod::Hypergraph,
                &ranks,
                threads,
            );
            println!("{threads:>8} {secs:>14.4}  (sim)");
        }
        println!();
        if !args.sim_only {
            let host_cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            for &threads in threads_sweep
                .iter()
                .filter(|&&t| t <= (2 * host_cores).max(2))
            {
                let secs = measured_seconds_per_iteration(
                    &tensor,
                    &ranks,
                    threads,
                    args.layout,
                    TtmcStrategy::Auto,
                );
                println!("{threads:>8} {secs:>14.4}  (meas, this host)");
            }
            println!();
        }
        run_requested_check(&args, &tensor, &ranks);
        return;
    }

    let nnz = table_nnz();
    // Minimum node counts per dataset, as in the paper.
    let datasets = [
        (ProfileName::Delicious, 8usize),
        (ProfileName::Flickr, 8),
        (ProfileName::Nell, 1),
        (ProfileName::Netflix, 4),
    ];
    print_header(
        "Table V — shared-memory scalability (time per iteration vs #threads)",
        &format!(
            "fine-hp partition on the minimum node count per tensor (in parentheses), ~{nnz} nonzeros.\n\
             'sim' columns use the BG/Q cost model; 'meas' columns run the real rayon solver on this host\n\
             (host cores: {}).",
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        ),
    );

    println!(
        "{:>8} {}",
        "#threads",
        datasets
            .iter()
            .map(|(n, nodes)| format!("{:>14}", format!("{} ({nodes})", n.as_str())))
            .collect::<Vec<_>>()
            .join("")
    );

    // Simulated sweep.
    for &threads in &threads_sweep {
        let mut row = format!("{threads:>8}");
        for (name, nodes) in datasets {
            let (profile, tensor) = profile_tensor(name, nnz, 42);
            let ranks = profile.paper_ranks().to_vec();
            let secs = simulated_iteration_seconds(
                &tensor,
                nodes,
                Grain::Fine,
                PartitionMethod::Hypergraph,
                &ranks,
                threads,
            );
            row.push_str(&format!("{:>14.4}", secs));
        }
        println!("{row}  (sim)");
    }
    println!();

    // Measured sweep on this host (single node, real solver).  Cap the
    // thread counts at twice the available cores to keep the run short.
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let measured_threads: Vec<usize> = threads_sweep
        .iter()
        .copied()
        .filter(|&t| t <= (2 * host_cores).max(2))
        .collect();
    for &threads in &measured_threads {
        let mut row = format!("{threads:>8}");
        for (name, _) in datasets {
            let (profile, tensor) = profile_tensor(name, nnz, 42);
            let ranks = profile.paper_ranks().to_vec();
            let secs = measured_seconds_per_iteration(
                &tensor,
                &ranks,
                threads,
                IndexLayout::Auto,
                TtmcStrategy::Auto,
            );
            row.push_str(&format!("{:>14.4}", secs));
        }
        println!("{row}  (meas, single node on this host)");
    }
    println!();
    println!("Paper reference (1 -> 32 threads): Delicious 1182.7 -> 164.9 s (7.2x), Flickr 5.1x,");
    println!("NELL 9.8x, Netflix 20x (superlinear on 16 cores thanks to 2-way SMT).");
}
