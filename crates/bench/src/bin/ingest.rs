//! Ingestion smoke benchmark: the "tensor larger than memory comfort"
//! path end to end.  Generates a multi-million-nonzero synthetic tensor
//! (or takes one via `--tns`), writes it to disk in `.tns` format, streams
//! it back under a bounded chunk size, builds per-mode CSF hierarchies
//! straight from the file (one external-sort pass per mode), and runs a
//! short Tucker solve on the compressed layout.
//!
//! Flags (shared ones from [`bench::cli_args`] plus this bin's own):
//!
//! * `--nnz <n>` — nonzero budget of the generated tensor (default 2M,
//!   env `HYPERTENSOR_INGEST_NNZ`);
//! * `--chunk <n>` — streaming chunk size in nonzeros (default 65536);
//! * `--check` — additionally assert CSF-vs-flat bit-identity of the
//!   decomposition and the multiset equality of the CSF contents;
//! * `--budget-secs <x>` — fail (exit 1) if the whole run exceeds the
//!   wall-clock budget (the CI smoke gate);
//! * `--tns <path>` — ingest an existing file instead of generating one.

use bench::{cli_args, print_header, run_requested_check, stream_options};
use datagen::{DatasetProfile, ProfileName};
use sptensor::io::{
    read_csf_tns_file, read_tns_file_streamed, write_tns_file_with_header, DuplicatePolicy,
};
use std::path::PathBuf;
use std::time::Instant;

/// Default nonzero budget: large enough that the chunked reader runs many
/// chunks and the CSF layout's compression is visible, small enough to
/// finish in well under a minute in release mode.
const DEFAULT_INGEST_NNZ: usize = 2_000_000;

struct BinArgs {
    nnz: usize,
    budget_secs: Option<f64>,
}

fn bin_args() -> BinArgs {
    let mut out = BinArgs {
        nnz: std::env::var("HYPERTENSOR_INGEST_NNZ")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_INGEST_NNZ),
        budget_secs: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} requires an argument");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--nnz" => {
                let spec = value("--nnz");
                out.nnz = spec.parse().unwrap_or_else(|_| {
                    eprintln!("could not parse --nnz '{spec}' as an integer");
                    std::process::exit(2);
                });
            }
            "--budget-secs" => {
                let spec = value("--budget-secs");
                out.budget_secs = Some(spec.parse().unwrap_or_else(|_| {
                    eprintln!("could not parse --budget-secs '{spec}' as a number");
                    std::process::exit(2);
                }));
            }
            _ => {}
        }
    }
    out
}

fn scratch_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hypertensor-ingest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| {
        eprintln!("could not create scratch dir {}: {e}", dir.display());
        std::process::exit(2);
    });
    dir
}

fn main() {
    let shared = cli_args();
    let bin = bin_args();
    let t0 = Instant::now();
    let options = stream_options(&shared);
    let chunk = options.chunk_nonzeros;

    print_header(
        "Ingestion smoke — streamed .tns round-trip and CSF build from disk",
        &format!(
            "chunk = {chunk} nonzeros; peak parse buffers stay bounded by the chunk, \
             not the file."
        ),
    );

    let dir = scratch_dir();
    let (path, expected_nnz) = match &shared.tns {
        Some(p) => (PathBuf::from(p), None),
        None => {
            let tensor = DatasetProfile::new(ProfileName::Nell).generate(bin.nnz, 42);
            let path = dir.join("ingest.tns");
            write_tns_file_with_header(&tensor, &path).unwrap_or_else(|e| {
                eprintln!("could not write {}: {e}", path.display());
                std::process::exit(2);
            });
            println!(
                "generated {} nonzeros (NELL profile, dims {:?}) -> {}",
                tensor.nnz(),
                tensor.dims(),
                path.display()
            );
            (path, Some(tensor.nnz()))
        }
    };

    // Pass 1: stream the file back into COO with bounded buffers.
    let (coo, stats) = read_tns_file_streamed(&path, &options).unwrap_or_else(|e| {
        eprintln!("streamed read of {} failed: {e}", path.display());
        std::process::exit(1);
    });
    let word = std::mem::size_of::<usize>();
    let bound = chunk * (coo.order() + 2) * word;
    println!(
        "streamed COO read: {} nnz in {} chunks, peak buffer {} bytes (bound {} bytes)",
        coo.nnz(),
        stats.chunks,
        stats.peak_buffer_bytes,
        bound
    );
    assert!(
        stats.peak_buffer_bytes <= bound,
        "peak parse buffer {} exceeds the chunk bound {}",
        stats.peak_buffer_bytes,
        bound
    );
    if let Some(n) = expected_nnz {
        assert_eq!(coo.nnz(), n, "round trip lost nonzeros");
    }

    // Pass 2..=order+1: build every mode's CSF hierarchy straight from the
    // file, one external-sort pass per mode, never holding full COO.
    let (csf, csf_stats) = read_csf_tns_file(&path, &options, DuplicatePolicy::Reject, &dir)
        .unwrap_or_else(|e| {
            eprintln!("CSF build from {} failed: {e}", path.display());
            std::process::exit(1);
        });
    assert_eq!(csf.dims(), coo.dims());
    assert_eq!(csf.nnz(), coo.nnz());
    println!(
        "CSF from disk: {} modes, {} bytes ({} bytes/nnz); worst pass peak buffer {} bytes",
        csf.order(),
        csf.memory_bytes(),
        csf.memory_bytes() / csf.nnz().max(1),
        csf_stats.peak_buffer_bytes
    );

    if shared.check {
        // The disk-built CSF must hold exactly the nonzeros of the COO
        // read: its mode-0 hierarchy flattened back out must match the
        // hierarchy built in memory from sorted COO, bit for bit.
        let mut sorted = coo.clone();
        sorted.sort_by_mode(0);
        let expect = sptensor::csf::CsfMode::from_coo(&sorted, 0);
        let mut k = 0usize;
        let mut mismatch = false;
        let mut expected: Vec<(usize, Vec<usize>, u64)> = Vec::with_capacity(sorted.nnz());
        expect.for_each_nonzero(|r, c, v| expected.push((r, c.to_vec(), v.to_bits())));
        csf.mode(0).for_each_nonzero(|r, c, v| {
            let (er, ec, ev) = &expected[k];
            mismatch |= r != *er || c != &ec[..] || v.to_bits() != *ev;
            k += 1;
        });
        assert!(
            !mismatch && k == sorted.nnz(),
            "disk-built CSF diverges from the in-memory hierarchy"
        );
        println!("content check: CSF mode-0 hierarchy matches sorted COO ({k} nonzeros)");
    }

    // Short solve on the compressed layout (ranks 4 per mode unless
    // --ranks was given; --check also proves CSF == flat bit for bit).
    let ranks: Vec<usize> = match &shared.ranks {
        Some(r) if r.len() == coo.order() => r.clone(),
        _ => coo.dims().iter().map(|&d| 4usize.min(d)).collect(),
    };
    run_requested_check(&shared, &coo, &ranks);
    let plan_options = hooi::PlanOptions::new()
        .ttmc_strategy(hooi::TtmcStrategy::PerMode)
        .index_layout(hooi::IndexLayout::Csf);
    let mut solver = hooi::TuckerSolver::plan(&coo, plan_options).unwrap_or_else(|e| {
        eprintln!("CSF plan failed: {e}");
        std::process::exit(1);
    });
    let config = hooi::TuckerConfig::new(ranks.clone())
        .max_iterations(2)
        .fit_tolerance(-1.0)
        .seed(42);
    let result = solver.solve(&config).unwrap_or_else(|e| {
        eprintln!("CSF solve failed: {e}");
        std::process::exit(1);
    });
    println!(
        "CSF solve: layout {:?}, ranks {:?}, {} iterations, fit {:.6}",
        solver.index_layout(),
        ranks,
        result.iterations,
        result.fits.last().copied().unwrap_or(f64::NAN)
    );

    let _ = std::fs::remove_dir_all(&dir);
    let elapsed = t0.elapsed().as_secs_f64();
    println!("total wall clock: {elapsed:.1} s");
    if let Some(budget) = bin.budget_secs {
        if elapsed > budget {
            eprintln!("ingestion smoke exceeded its {budget:.1} s budget ({elapsed:.1} s)");
            std::process::exit(1);
        }
        println!("within the {budget:.1} s budget");
    }
}
