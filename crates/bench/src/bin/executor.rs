//! Simulated versus executed: runs the distributed HOOI on the message-
//! passing executor (channel and, where available, loopback-TCP backends)
//! and puts its measured wall time and communication next to the cost
//! model's predictions for the same `(grain, method, ranks)` configuration.
//!
//! Three claims are on display per dataset profile:
//!
//! 1. the executor's factors/core are bit-identical to the shared-memory
//!    solver (printed as a ✓ after an exact comparison),
//! 2. the measured expand/fold word counts equal the simulator's
//!    predictions exactly,
//! 3. the channel and TCP backends agree with each other — only transport
//!    cost differs.
//!
//! ```text
//! cargo run --release -p bench --bin executor
//! cargo run --release -p bench --bin executor -- --tns path/to/tensor.tns --ranks 8,8,8
//! ```
//!
//! Scale the synthetic nonzero budget with `HYPERTENSOR_NNZ`.

use bench::{cli_args, cli_tensor, print_header, profile_tensor, table_nnz};
use datagen::ProfileName;
use distsim::exec::{execute_hooi, ExecOptions};
use distsim::{
    iteration_stats, loopback_tcp_available, CommBackend, DistributedSetup, Grain, MachineModel,
    PartitionMethod, Phase, SimConfig,
};
use hooi::{PlanOptions, TuckerConfig, TuckerSolver};
use sptensor::SparseTensor;

fn run_configuration(tensor: &SparseTensor, ranks: &[usize], num_ranks: usize) {
    let tucker = TuckerConfig::new(ranks.to_vec()).max_iterations(3).seed(17);
    let mut solver = TuckerSolver::plan(tensor, PlanOptions::new().num_threads(1))
        .expect("plan shared-memory reference");
    let shared = solver.solve(&tucker).expect("shared-memory solve");
    let machine = MachineModel::bluegene_q();

    println!(
        "{:<12} {:>6} {:>10} {:>10} {:>10} {:>12} {:>12} {:>6}",
        "config", "#ranks", "sim-s/it", "chan-ms", "tcp-ms", "meas-KB", "pred=meas", "exact"
    );
    for (grain, method) in [
        (Grain::Fine, PartitionMethod::Hypergraph),
        (Grain::Fine, PartitionMethod::Random),
        (Grain::Coarse, PartitionMethod::Hypergraph),
        (Grain::Coarse, PartitionMethod::Block),
    ] {
        let mut config = SimConfig::new(num_ranks, grain, method, ranks.to_vec());
        config.threads_per_rank = 1;
        let setup = DistributedSetup::build(tensor, &config);
        let sim = distsim::simulate_iteration(
            tensor,
            &setup,
            &machine,
            distsim::stats::DEFAULT_TRSVD_APPLICATIONS,
        );

        let chan = execute_hooi(tensor, &setup, &tucker, &ExecOptions::default())
            .expect("channel-backend run");
        let tcp_ms = if loopback_tcp_available() {
            let tcp = execute_hooi(
                tensor,
                &setup,
                &tucker,
                &ExecOptions::new().backend(CommBackend::Tcp),
            )
            .expect("tcp-backend run");
            assert_eq!(
                tcp.decomposition.fits, chan.decomposition.fits,
                "backends disagree"
            );
            format!("{:.2}", tcp.wall.as_secs_f64() * 1e3)
        } else {
            "n/a".to_string()
        };

        let stats = iteration_stats(tensor, &setup, distsim::stats::DEFAULT_TRSVD_APPLICATIONS);
        let iters = chan.decomposition.iterations as u64;
        let predicted: u64 = stats
            .expand_words_per_rank()
            .iter()
            .chain(stats.fold_words_per_rank().iter())
            .sum::<u64>()
            * iters;
        let measured: u64 = chan
            .comm
            .iter()
            .map(|c| {
                c.phase(Phase::Expand).floats_transferred()
                    + c.phase(Phase::Fold).floats_transferred()
            })
            .sum();
        let exact = chan
            .decomposition
            .factors
            .iter()
            .zip(shared.factors.iter())
            .all(|(a, b)| a == b)
            && chan.decomposition.core.as_slice() == shared.core.as_slice();

        println!(
            "{:<12} {:>6} {:>10.4} {:>10.2} {:>10} {:>12.1} {:>12} {:>6}",
            config.label(),
            num_ranks,
            sim.total_seconds(),
            chan.wall.as_secs_f64() * 1e3,
            tcp_ms,
            chan.total_bytes() as f64 / 1024.0,
            if predicted == measured { "yes" } else { "NO" },
            if exact { "✓" } else { "✗" }
        );
    }
}

fn main() {
    let args = cli_args();
    if let Some((label, tensor, ranks)) = cli_tensor(&args) {
        print_header(
            "Executor vs simulator on a real .tns tensor",
            &format!(
                "{label}: dims {:?}, {} nonzeros, ranks {ranks:?}",
                tensor.dims(),
                tensor.nnz()
            ),
        );
        run_configuration(&tensor, &ranks, 4);
        return;
    }

    let nnz = table_nnz();
    print_header(
        "Executor vs simulator — simulated seconds, executed wall time, measured vs predicted comm",
        &format!(
            "4 message-passing ranks per run, 1 thread each; ~{nnz} nonzeros per synthetic profile.\n\
             'exact' marks bit-identical factors/core vs the shared-memory solver.\n\
             Pass --tns <path> (and optionally --ranks r1,r2,…) to run on a real FROSTT dump."
        ),
    );
    for name in [ProfileName::Delicious, ProfileName::Flickr] {
        let (profile, tensor) = profile_tensor(name, nnz, 42);
        println!("--- {} ---", name.as_str());
        run_configuration(&tensor, profile.paper_ranks(), 4);
        println!();
    }
}
