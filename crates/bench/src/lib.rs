//! Shared helpers for the experiment harness.
//!
//! Every table of the paper's evaluation section has a binary in
//! `src/bin/` that regenerates it on scaled-down synthetic data (see
//! DESIGN.md and EXPERIMENTS.md), and the design choices called out in
//! DESIGN.md have Criterion ablation benches under `benches/`.

pub mod scheduling;

use datagen::{DatasetProfile, ProfileName};
use distsim::{DistributedSetup, Grain, MachineModel, PartitionMethod, SimConfig};
use sptensor::SparseTensor;

/// Default nonzero budget per synthetic dataset used by the table binaries.
/// Large enough that skew and per-mode structure are visible, small enough
/// that every table regenerates in seconds on a laptop.  Override with the
/// `HYPERTENSOR_NNZ` environment variable.
pub const DEFAULT_TABLE_NNZ: usize = 60_000;

/// Returns the nonzero budget for table experiments, honouring
/// `HYPERTENSOR_NNZ` when set.
pub fn table_nnz() -> usize {
    std::env::var("HYPERTENSOR_NNZ")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_TABLE_NNZ)
}

/// Generates the scaled synthetic tensor of one of the paper's datasets.
pub fn profile_tensor(name: ProfileName, nnz: usize, seed: u64) -> (DatasetProfile, SparseTensor) {
    let profile = DatasetProfile::new(name);
    let tensor = profile.generate(nnz, seed);
    (profile, tensor)
}

/// The four `(grain, method)` configurations of the paper's Tables II/III,
/// in column order: `fine-hp`, `fine-rd`, `coarse-hp`, `coarse-bl`.
pub fn paper_configurations() -> [(Grain, PartitionMethod); 4] {
    [
        (Grain::Fine, PartitionMethod::Hypergraph),
        (Grain::Fine, PartitionMethod::Random),
        (Grain::Coarse, PartitionMethod::Hypergraph),
        (Grain::Coarse, PartitionMethod::Block),
    ]
}

/// Builds a simulation config with the paper's 32 threads per rank.
pub fn sim_config(
    num_ranks: usize,
    grain: Grain,
    method: PartitionMethod,
    ranks: &[usize],
) -> SimConfig {
    SimConfig::new(num_ranks, grain, method, ranks.to_vec())
}

/// Simulates the per-iteration time of a configuration on a tensor.
pub fn simulated_iteration_seconds(
    tensor: &SparseTensor,
    num_ranks: usize,
    grain: Grain,
    method: PartitionMethod,
    ranks: &[usize],
    threads: usize,
) -> f64 {
    let mut config = sim_config(num_ranks, grain, method, ranks);
    config.threads_per_rank = threads;
    let setup = DistributedSetup::build(tensor, &config);
    let cost = distsim::simulate_iteration(
        tensor,
        &setup,
        &MachineModel::bluegene_q(),
        distsim::stats::DEFAULT_TRSVD_APPLICATIONS,
    );
    cost.total_seconds()
}

/// Command-line options shared by the table/executor binaries: an optional
/// real `.tns` tensor to run on instead of the synthetic profiles
/// (ROADMAP "Large-scale validation"), and the Tucker ranks to use for it.
#[derive(Debug, Default, Clone)]
pub struct CliArgs {
    /// Path passed via `--tns <path>`: a FROSTT-format coordinate file.
    pub tns: Option<String>,
    /// Ranks passed via `--ranks r1,r2,…` (only meaningful with `--tns`;
    /// defaults to 4 per mode).
    pub ranks: Option<Vec<usize>>,
}

/// Parses `--tns <path>` and `--ranks r1,r2,…` from the process arguments,
/// ignoring anything else (so Cargo's own flags pass through).
pub fn cli_args() -> CliArgs {
    let mut out = CliArgs::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tns" => {
                out.tns = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--tns requires a path argument");
                    std::process::exit(2);
                }))
            }
            "--ranks" => {
                let spec = args.next().unwrap_or_else(|| {
                    eprintln!("--ranks requires a comma-separated list, e.g. --ranks 4,4,4");
                    std::process::exit(2);
                });
                let parsed: Result<Vec<usize>, _> =
                    spec.split(',').map(|r| r.trim().parse()).collect();
                match parsed {
                    Ok(ranks) if !ranks.is_empty() => out.ranks = Some(ranks),
                    _ => {
                        eprintln!("could not parse --ranks '{spec}' as comma-separated integers");
                        std::process::exit(2);
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Loads the `--tns` tensor if one was requested: returns its display
/// label, the tensor, and the per-mode Tucker ranks (from `--ranks`, else
/// 4 per mode, clamped to the mode sizes).  Exits with a message on a
/// malformed file — a bad path should fail loudly, not fall back.
pub fn cli_tensor(args: &CliArgs) -> Option<(String, SparseTensor, Vec<usize>)> {
    let path = args.tns.as_ref()?;
    let tensor = match sptensor::io::read_tns_file(path, None) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("failed to read {path}: {e}");
            std::process::exit(2);
        }
    };
    let ranks: Vec<usize> = match &args.ranks {
        Some(r) if r.len() == tensor.order() => r.clone(),
        Some(r) => {
            eprintln!(
                "--ranks has {} entries but {path} has {} modes",
                r.len(),
                tensor.order()
            );
            std::process::exit(2);
        }
        None => vec![4; tensor.order()],
    };
    let ranks = ranks
        .iter()
        .zip(tensor.dims())
        .map(|(&r, &d)| r.min(d).max(1))
        .collect();
    let label = std::path::Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.clone());
    Some((label, tensor, ranks))
}

/// Formats a number in the `K`/`M` style used by the paper's Table III.
pub fn format_kilo(x: f64) -> String {
    if x >= 1e6 {
        format!("{:.0}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.0}K", x / 1e3)
    } else {
        format!("{x:.0}")
    }
}

/// Prints a standard experiment header naming the paper artifact being
/// regenerated.
pub fn print_header(title: &str, detail: &str) {
    println!("=== {title} ===");
    println!("{detail}");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_tensor_generates_requested_order() {
        let (profile, tensor) = profile_tensor(ProfileName::Netflix, 2_000, 1);
        assert_eq!(tensor.order(), 3);
        assert_eq!(profile.paper_ranks(), &[10, 10, 10]);
    }

    #[test]
    fn configurations_are_the_papers_four() {
        let confs = paper_configurations();
        assert_eq!(confs.len(), 4);
        let labels: Vec<String> = confs
            .iter()
            .map(|&(g, m)| sim_config(2, g, m, &[2, 2]).label())
            .collect();
        assert_eq!(labels, vec!["fine-hp", "fine-rd", "coarse-hp", "coarse-bl"]);
    }

    #[test]
    fn format_kilo_ranges() {
        assert_eq!(format_kilo(950.0), "950");
        assert_eq!(format_kilo(441_000.0), "441K");
        assert_eq!(format_kilo(2_500_000.0), "2M");
    }

    #[test]
    fn simulated_seconds_positive_and_scaling() {
        let (_, tensor) = profile_tensor(ProfileName::Nell, 5_000, 3);
        let t2 = simulated_iteration_seconds(
            &tensor,
            2,
            Grain::Fine,
            PartitionMethod::Random,
            &[4, 4, 4],
            16,
        );
        let t8 = simulated_iteration_seconds(
            &tensor,
            8,
            Grain::Fine,
            PartitionMethod::Random,
            &[4, 4, 4],
            16,
        );
        assert!(t2 > 0.0);
        assert!(t8 < t2);
    }
}
