//! Shared helpers for the experiment harness.
//!
//! Every table of the paper's evaluation section has a binary in
//! `src/bin/` that regenerates it on scaled-down synthetic data (see
//! DESIGN.md and EXPERIMENTS.md), and the design choices called out in
//! DESIGN.md have Criterion ablation benches under `benches/`.

pub mod scheduling;

use datagen::{DatasetProfile, ProfileName};
use distsim::{DistributedSetup, Grain, MachineModel, PartitionMethod, SimConfig};
use hooi::{IndexLayout, PlanOptions, TtmcStrategy, TuckerConfig, TuckerSolver};
use sptensor::io::StreamOptions;
use sptensor::SparseTensor;

/// Default nonzero budget per synthetic dataset used by the table binaries.
/// Large enough that skew and per-mode structure are visible, small enough
/// that every table regenerates in seconds on a laptop.  Override with the
/// `HYPERTENSOR_NNZ` environment variable.
pub const DEFAULT_TABLE_NNZ: usize = 60_000;

/// Returns the nonzero budget for table experiments, honouring
/// `HYPERTENSOR_NNZ` when set.
pub fn table_nnz() -> usize {
    std::env::var("HYPERTENSOR_NNZ")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_TABLE_NNZ)
}

/// Generates the scaled synthetic tensor of one of the paper's datasets.
pub fn profile_tensor(name: ProfileName, nnz: usize, seed: u64) -> (DatasetProfile, SparseTensor) {
    let profile = DatasetProfile::new(name);
    let tensor = profile.generate(nnz, seed);
    (profile, tensor)
}

/// The four `(grain, method)` configurations of the paper's Tables II/III,
/// in column order: `fine-hp`, `fine-rd`, `coarse-hp`, `coarse-bl`.
pub fn paper_configurations() -> [(Grain, PartitionMethod); 4] {
    [
        (Grain::Fine, PartitionMethod::Hypergraph),
        (Grain::Fine, PartitionMethod::Random),
        (Grain::Coarse, PartitionMethod::Hypergraph),
        (Grain::Coarse, PartitionMethod::Block),
    ]
}

/// Builds a simulation config with the paper's 32 threads per rank.
pub fn sim_config(
    num_ranks: usize,
    grain: Grain,
    method: PartitionMethod,
    ranks: &[usize],
) -> SimConfig {
    SimConfig::new(num_ranks, grain, method, ranks.to_vec())
}

/// Simulates the per-iteration time of a configuration on a tensor.
pub fn simulated_iteration_seconds(
    tensor: &SparseTensor,
    num_ranks: usize,
    grain: Grain,
    method: PartitionMethod,
    ranks: &[usize],
    threads: usize,
) -> f64 {
    let mut config = sim_config(num_ranks, grain, method, ranks);
    config.threads_per_rank = threads;
    let setup = DistributedSetup::build(tensor, &config);
    let cost = distsim::simulate_iteration(
        tensor,
        &setup,
        &MachineModel::bluegene_q(),
        distsim::stats::DEFAULT_TRSVD_APPLICATIONS,
    );
    cost.total_seconds()
}

/// Command-line options shared by the table/executor binaries: an optional
/// real `.tns` tensor to run on instead of the synthetic profiles
/// (ROADMAP "Large-scale validation"), and the Tucker ranks to use for it.
#[derive(Debug, Default, Clone)]
pub struct CliArgs {
    /// Path passed via `--tns <path>`: a FROSTT-format coordinate file.
    pub tns: Option<String>,
    /// Ranks passed via `--ranks r1,r2,…` (only meaningful with `--tns`;
    /// defaults to 4 per mode).
    pub ranks: Option<Vec<usize>>,
    /// Per-mode index layout passed via `--layout coo|modesorted|csf|auto`;
    /// defaults to `auto` (resolved from the tensor size at plan time).
    pub layout: IndexLayout,
    /// Streaming chunk size (nonzeros resident per parser chunk) passed via
    /// `--chunk <n>`; `None` keeps the reader's default.
    pub chunk: Option<usize>,
    /// `--sim-only`: skip wall-clock-measured sweeps so the output is a
    /// deterministic function of the input (used by the golden-file tests).
    pub sim_only: bool,
    /// `--check`: verify that the CSF and flat TTMc paths produce
    /// bit-identical decompositions on the loaded tensor before reporting.
    pub check: bool,
}

fn parse_layout(spec: &str) -> IndexLayout {
    match spec.to_ascii_lowercase().as_str() {
        "coo" => IndexLayout::Coo,
        "modesorted" | "mode-sorted" | "sorted" => IndexLayout::ModeSorted,
        "csf" => IndexLayout::Csf,
        "auto" => IndexLayout::Auto,
        other => {
            eprintln!("unknown --layout '{other}' (expected coo|modesorted|csf|auto)");
            std::process::exit(2);
        }
    }
}

/// Parses the shared flags (`--tns <path>`, `--ranks r1,r2,…`,
/// `--layout coo|modesorted|csf|auto`, `--chunk <n>`, `--sim-only`,
/// `--check`) from the process arguments, ignoring anything else (so
/// Cargo's own flags pass through).
pub fn cli_args() -> CliArgs {
    let mut out = CliArgs::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tns" => {
                out.tns = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--tns requires a path argument");
                    std::process::exit(2);
                }))
            }
            "--ranks" => {
                let spec = args.next().unwrap_or_else(|| {
                    eprintln!("--ranks requires a comma-separated list, e.g. --ranks 4,4,4");
                    std::process::exit(2);
                });
                let parsed: Result<Vec<usize>, _> =
                    spec.split(',').map(|r| r.trim().parse()).collect();
                match parsed {
                    Ok(ranks) if !ranks.is_empty() => out.ranks = Some(ranks),
                    _ => {
                        eprintln!("could not parse --ranks '{spec}' as comma-separated integers");
                        std::process::exit(2);
                    }
                }
            }
            "--layout" => {
                let spec = args.next().unwrap_or_else(|| {
                    eprintln!("--layout requires a value: coo|modesorted|csf|auto");
                    std::process::exit(2);
                });
                out.layout = parse_layout(&spec);
            }
            "--chunk" => {
                let spec = args.next().unwrap_or_else(|| {
                    eprintln!("--chunk requires a positive nonzero count");
                    std::process::exit(2);
                });
                match spec.parse::<usize>() {
                    Ok(n) if n > 0 => out.chunk = Some(n),
                    _ => {
                        eprintln!("could not parse --chunk '{spec}' as a positive integer");
                        std::process::exit(2);
                    }
                }
            }
            "--sim-only" => out.sim_only = true,
            "--check" => out.check = true,
            _ => {}
        }
    }
    out
}

/// Builds the streaming-reader options the CLI flags ask for.
pub fn stream_options(args: &CliArgs) -> StreamOptions {
    let mut options = StreamOptions::new();
    if let Some(chunk) = args.chunk {
        options = options.chunk_nonzeros(chunk);
    }
    options
}

/// Loads the `--tns` tensor if one was requested: returns its display
/// label, the tensor, and the per-mode Tucker ranks (from `--ranks`, else
/// 4 per mode, clamped to the mode sizes).  Exits with a message on a
/// malformed file — a bad path should fail loudly, not fall back.
pub fn cli_tensor(args: &CliArgs) -> Option<(String, SparseTensor, Vec<usize>)> {
    let path = args.tns.as_ref()?;
    // The streamed reader keeps the parse buffer bounded by `--chunk`
    // nonzeros regardless of the file size (see sptensor::io::stream_tns).
    let tensor = match sptensor::io::read_tns_file_streamed(path, &stream_options(args)) {
        Ok((t, _stats)) => t,
        Err(e) => {
            eprintln!("failed to read {path}: {e}");
            std::process::exit(2);
        }
    };
    let ranks: Vec<usize> = match &args.ranks {
        Some(r) if r.len() == tensor.order() => r.clone(),
        Some(r) => {
            eprintln!(
                "--ranks has {} entries but {path} has {} modes",
                r.len(),
                tensor.order()
            );
            std::process::exit(2);
        }
        None => vec![4; tensor.order()],
    };
    let ranks = ranks
        .iter()
        .zip(tensor.dims())
        .map(|(&r, &d)| r.min(d).max(1))
        .collect();
    let label = std::path::Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.clone());
    Some((label, tensor, ranks))
}

/// Plans one single-threaded per-mode session per index layout, solves the
/// same configuration in each, and asserts that the factor matrices, core
/// tensor and fit trajectories agree **bit for bit** — the CSF walk and the
/// flat gather must be the same IEEE accumulation, not merely close.
/// Returns the number of modes checked; exits with a diagnostic on any
/// divergence (this backs the table binaries' `--check` flag).
pub fn check_layout_bit_identity(tensor: &SparseTensor, ranks: &[usize]) -> usize {
    let config = TuckerConfig::new(ranks.to_vec())
        .max_iterations(2)
        .fit_tolerance(-1.0)
        .seed(7);
    let mut reference: Option<(IndexLayout, hooi::TuckerDecomposition)> = None;
    for layout in [IndexLayout::Coo, IndexLayout::ModeSorted, IndexLayout::Csf] {
        let options = PlanOptions::new()
            .num_threads(1)
            .ttmc_strategy(TtmcStrategy::PerMode)
            .index_layout(layout);
        let mut solver = TuckerSolver::plan(tensor, options)
            .unwrap_or_else(|e| fail_check(&format!("planning with {layout:?} failed: {e}")));
        let result = solver
            .solve(&config)
            .unwrap_or_else(|e| fail_check(&format!("solving with {layout:?} failed: {e}")));
        match &reference {
            None => reference = Some((layout, result)),
            Some((base_layout, base)) => {
                let same_core = bits_equal(base.core.as_slice(), result.core.as_slice());
                let same_factors = base
                    .factors
                    .iter()
                    .zip(result.factors.iter())
                    .all(|(a, b)| bits_equal(a.as_slice(), b.as_slice()));
                let same_fits = bits_equal(&base.fits, &result.fits);
                if !(same_core && same_factors && same_fits) {
                    fail_check(&format!(
                        "{layout:?} diverges from {base_layout:?} \
                         (core equal: {same_core}, factors equal: {same_factors}, \
                         fits equal: {same_fits})"
                    ));
                }
            }
        }
    }
    tensor.order()
}

/// Runs the `--check` layout verification when the flag was passed and
/// prints a stable one-line confirmation (snapshotted by the golden tests).
pub fn run_requested_check(args: &CliArgs, tensor: &SparseTensor, ranks: &[usize]) {
    if args.check {
        let modes = check_layout_bit_identity(tensor, ranks);
        println!("layout check: CSF and flat TTMc bit-identical over {modes} modes");
    }
}

fn bits_equal(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn fail_check(msg: &str) -> ! {
    eprintln!("layout check FAILED: {msg}");
    std::process::exit(1);
}

/// Plans the tensor once per concrete index layout (single worker thread,
/// per-mode strategy) and reports each plan's measured memory footprint —
/// the number Table I's `--tns` mode prints so the layout choice is
/// auditable.  Returns `(layout, plan bytes)` rows in a fixed order.
pub fn layout_memory_report(tensor: &SparseTensor) -> Vec<(IndexLayout, usize)> {
    [IndexLayout::Coo, IndexLayout::ModeSorted, IndexLayout::Csf]
        .into_iter()
        .map(|layout| {
            let options = PlanOptions::new()
                .num_threads(1)
                .ttmc_strategy(TtmcStrategy::PerMode)
                .index_layout(layout);
            let solver = TuckerSolver::plan(tensor, options).unwrap_or_else(|e| {
                eprintln!("planning with {layout:?} failed: {e}");
                std::process::exit(2);
            });
            (layout, solver.memory_bytes())
        })
        .collect()
}

/// JSON fragment reporting the host's SIMD capabilities (one line, with a
/// trailing comma), embedded at the top level of every bench's
/// machine-readable output so measured speedups can be interpreted per
/// host: an `avx2: false` host legitimately reports 1.0x SIMD speedups.
pub fn cpu_features_json() -> String {
    format!(
        "  \"cpu_features\": {{\"avx2\": {}, \"fma\": {}}},\n",
        linalg::simd::avx2_available(),
        linalg::simd::fma_available()
    )
}

/// Formats a number in the `K`/`M` style used by the paper's Table III.
pub fn format_kilo(x: f64) -> String {
    if x >= 1e6 {
        format!("{:.0}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.0}K", x / 1e3)
    } else {
        format!("{x:.0}")
    }
}

/// Prints a standard experiment header naming the paper artifact being
/// regenerated.
pub fn print_header(title: &str, detail: &str) {
    println!("=== {title} ===");
    println!("{detail}");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_tensor_generates_requested_order() {
        let (profile, tensor) = profile_tensor(ProfileName::Netflix, 2_000, 1);
        assert_eq!(tensor.order(), 3);
        assert_eq!(profile.paper_ranks(), &[10, 10, 10]);
    }

    #[test]
    fn configurations_are_the_papers_four() {
        let confs = paper_configurations();
        assert_eq!(confs.len(), 4);
        let labels: Vec<String> = confs
            .iter()
            .map(|&(g, m)| sim_config(2, g, m, &[2, 2]).label())
            .collect();
        assert_eq!(labels, vec!["fine-hp", "fine-rd", "coarse-hp", "coarse-bl"]);
    }

    #[test]
    fn cpu_features_json_is_a_flat_object_line() {
        let line = cpu_features_json();
        assert!(line.starts_with("  \"cpu_features\": {\"avx2\": "));
        assert!(line.ends_with("},\n"));
        assert!(line.contains("\"fma\": "));
    }

    #[test]
    fn format_kilo_ranges() {
        assert_eq!(format_kilo(950.0), "950");
        assert_eq!(format_kilo(441_000.0), "441K");
        assert_eq!(format_kilo(2_500_000.0), "2M");
    }

    #[test]
    fn layout_spec_parses_all_variants() {
        assert_eq!(parse_layout("coo"), IndexLayout::Coo);
        assert_eq!(parse_layout("modesorted"), IndexLayout::ModeSorted);
        assert_eq!(parse_layout("mode-sorted"), IndexLayout::ModeSorted);
        assert_eq!(parse_layout("CSF"), IndexLayout::Csf);
        assert_eq!(parse_layout("auto"), IndexLayout::Auto);
    }

    #[test]
    fn stream_options_honour_chunk_flag() {
        let args = CliArgs {
            chunk: Some(128),
            ..CliArgs::default()
        };
        assert_eq!(stream_options(&args).chunk_nonzeros, 128);
        let defaults = stream_options(&CliArgs::default());
        assert_eq!(defaults.chunk_nonzeros, StreamOptions::new().chunk_nonzeros);
    }

    #[test]
    fn layout_check_passes_on_a_profile_tensor() {
        let (_, tensor) = profile_tensor(ProfileName::Nell, 3_000, 11);
        let modes = check_layout_bit_identity(&tensor, &[3, 3, 3]);
        assert_eq!(modes, tensor.order());
    }

    #[test]
    fn layout_memory_report_covers_all_layouts() {
        let (_, tensor) = profile_tensor(ProfileName::Netflix, 4_000, 5);
        let report = layout_memory_report(&tensor);
        assert_eq!(report.len(), 3);
        assert_eq!(report[0].0, IndexLayout::Coo);
        assert!(report.iter().all(|&(_, bytes)| bytes > 0));
        // Attaching any streaming layout can only grow the plan.
        assert!(report[1].1 > report[0].1);
        assert!(report[2].1 > report[0].1);
    }

    #[test]
    fn simulated_seconds_positive_and_scaling() {
        let (_, tensor) = profile_tensor(ProfileName::Nell, 5_000, 3);
        let t2 = simulated_iteration_seconds(
            &tensor,
            2,
            Grain::Fine,
            PartitionMethod::Random,
            &[4, 4, 4],
            16,
        );
        let t8 = simulated_iteration_seconds(
            &tensor,
            8,
            Grain::Fine,
            PartitionMethod::Random,
            &[4, 4, 4],
            16,
        );
        assert!(t2 > 0.0);
        assert!(t8 < t2);
    }
}
