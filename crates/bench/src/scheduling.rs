//! Deterministic scheduling models: static equal-block splitting versus
//! chunked dynamic (steal-on-idle) scheduling over a task-cost vector.
//!
//! The paper's shared-memory results hinge on OpenMP *dynamic* scheduling
//! of the TTMc row loop: update-list lengths on the skewed tensors
//! (Delicious/Flickr) vary by orders of magnitude, so splitting rows into
//! equal contiguous blocks leaves every thread idle behind the one that
//! drew the heavy slices.  The rayon shim's persistent pool now schedules
//! dynamically (chunked spans + work stealing); this module models both
//! policies *deterministically* — load is measured as the maximum summed
//! task cost per worker rather than wall time — so the comparison holds on
//! a 1-CPU CI builder exactly as it does on a 32-core node.
//!
//! `static_block_schedule` mirrors the shim's [`rayon::SchedulePolicy::Static`]
//! baseline (one contiguous equal-count block per worker, no stealing);
//! `dynamic_chunked_schedule` is the idealization of steal-on-idle: chunks
//! of consecutive tasks are claimed, in order, by whichever worker is free
//! first (Graham's list scheduling).  The real pool can only deviate from
//! the model by sub-chunk timing noise, so the model's imbalance is the
//! right machine-independent proxy.

use hooi::symbolic::SymbolicMode;

/// Per-worker summed task costs under one scheduling policy.
#[derive(Debug, Clone)]
pub struct ScheduleOutcome {
    /// Total cost executed by each worker.
    pub worker_loads: Vec<f64>,
}

impl ScheduleOutcome {
    /// The makespan proxy: the most loaded worker's total cost.
    pub fn max_load(&self) -> f64 {
        self.worker_loads.iter().cloned().fold(0.0, f64::max)
    }

    /// Total cost across all workers.
    pub fn total_load(&self) -> f64 {
        self.worker_loads.iter().sum()
    }

    /// Load imbalance as the paper reports it: max over average (1.0 is
    /// perfect balance).
    pub fn imbalance(&self) -> f64 {
        let avg = self.total_load() / self.worker_loads.len() as f64;
        if avg == 0.0 {
            1.0
        } else {
            self.max_load() / avg
        }
    }
}

/// Static scheduling: contiguous blocks of as-equal-as-possible *count*
/// (the old shim policy and the `SchedulePolicy::Static` baseline).  The
/// split is [`rayon::participant_block`] itself, so the model cannot drift
/// from the pool's actual static dealing.
pub fn static_block_schedule(costs: &[f64], workers: usize) -> ScheduleOutcome {
    assert!(workers > 0, "need at least one worker");
    let worker_loads = (0..workers)
        .map(|w| {
            costs[rayon::participant_block(costs.len(), workers, w)]
                .iter()
                .sum()
        })
        .collect();
    ScheduleOutcome { worker_loads }
}

/// Dynamic chunked scheduling: consecutive chunks of `chunk` tasks are
/// claimed in order by the worker that becomes free earliest (ties broken
/// by worker index) — the deterministic idealization of the pool's
/// steal-on-idle behavior.
pub fn dynamic_chunked_schedule(costs: &[f64], workers: usize, chunk: usize) -> ScheduleOutcome {
    assert!(workers > 0, "need at least one worker");
    assert!(chunk > 0, "chunk size must be positive");
    let mut worker_loads = vec![0.0; workers];
    for tasks in costs.chunks(chunk) {
        let cost: f64 = tasks.iter().sum();
        // Earliest-free worker claims the next chunk.
        let (w, _) = worker_loads
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(a.0.cmp(&b.0)))
            .unwrap();
        worker_loads[w] += cost;
    }
    ScheduleOutcome { worker_loads }
}

/// The chunk size the shim's dynamic policy would use for `n` tasks on a
/// `workers`-wide pool ([`rayon::SPANS_PER_WORKER`] spans per participant —
/// shared with the pool so the model cannot silently drift from it).
pub fn shim_chunk_size(n: usize, workers: usize) -> usize {
    n.div_ceil(workers * rayon::SPANS_PER_WORKER).max(1)
}

/// Synthetic Zipf task costs: task `k` costs `1 / (k + 1)^exponent`.
/// This is the slice-size profile of a mode whose indices arrive in
/// popularity order.
pub fn zipf_costs(n: usize, exponent: f64) -> Vec<f64> {
    (0..n)
        .map(|k| 1.0 / ((k + 1) as f64).powf(exponent))
        .collect()
}

/// Zipf task costs scattered by a deterministic bijection (a multiplicative
/// hash with an odd multiplier, like the dataset generator's
/// `scatter_index`): popular entities have arbitrary ids in real data, so
/// the heavy slices land in arbitrary positions of the row range — the
/// distribution static equal blocks actually face in the TTMc loop.
pub fn scattered_zipf_costs(n: usize, exponent: f64, seed: u64) -> Vec<f64> {
    let mut costs = vec![0.0; n];
    if n == 0 {
        return costs;
    }
    let mut mult = (seed | 1) as u128;
    while gcd(mult as u64, n as u64) != 1 {
        mult += 2;
    }
    for (k, cost) in zipf_costs(n, exponent).into_iter().enumerate() {
        let position = ((k as u128 * mult) % n as u128) as usize;
        costs[position] = cost;
    }
    costs
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Real task costs of one TTMc mode: the update-list length of every row of
/// `J_n`, which is exactly the work the numeric kernel does per row.
pub fn update_list_costs(sym: &SymbolicMode) -> Vec<f64> {
    (0..sym.num_rows())
        .map(|p| sym.update_list(p).len() as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{DatasetProfile, ProfileName};
    use hooi::symbolic::SymbolicTtmc;

    #[test]
    fn outcomes_conserve_total_work() {
        let costs = zipf_costs(1000, 1.2);
        let total: f64 = costs.iter().sum();
        for workers in [1, 2, 4, 8] {
            let s = static_block_schedule(&costs, workers);
            let d = dynamic_chunked_schedule(&costs, workers, 8);
            assert!((s.total_load() - total).abs() < 1e-9);
            assert!((d.total_load() - total).abs() < 1e-9);
        }
    }

    #[test]
    fn uniform_costs_balance_under_both_policies() {
        let costs = vec![1.0; 1024];
        for workers in [2, 4, 8] {
            let s = static_block_schedule(&costs, workers);
            let d = dynamic_chunked_schedule(&costs, workers, shim_chunk_size(1024, workers));
            assert!(s.imbalance() < 1.01, "static {}", s.imbalance());
            assert!(d.imbalance() < 1.01, "dynamic {}", d.imbalance());
        }
    }

    #[test]
    fn dynamic_beats_static_on_zipf_skewed_tasks() {
        // The acceptance gate of this PR: on a Zipf-skewed task
        // distribution, chunked dynamic scheduling must have measurably
        // lower max-worker-load than static equal blocks.  Everything here
        // is exact arithmetic — no wall clock — so it holds on any builder.
        let costs = scattered_zipf_costs(4096, 1.1, 9);
        for workers in [4, 8] {
            let s = static_block_schedule(&costs, workers);
            let d = dynamic_chunked_schedule(&costs, workers, shim_chunk_size(4096, workers));
            assert!(
                d.max_load() < 0.85 * s.max_load(),
                "workers {workers}: dynamic {} vs static {}",
                d.max_load(),
                s.max_load()
            );
            assert!(d.imbalance() < s.imbalance());
        }
        // Even in popularity order — where one chunk contains the entire
        // Zipf head and no schedule can split it — dynamic is still never
        // worse and strictly better.
        let sorted = zipf_costs(4096, 1.1);
        for workers in [4, 8] {
            let s = static_block_schedule(&sorted, workers);
            let d = dynamic_chunked_schedule(&sorted, workers, shim_chunk_size(4096, workers));
            assert!(d.max_load() < s.max_load());
        }
    }

    #[test]
    fn dynamic_beats_static_on_profile_update_lists() {
        // Same comparison on the real per-row TTMc costs of a skewed
        // 4-mode profile (scattered indices, so the heavy slices land in
        // arbitrary static blocks rather than the first one).
        let tensor = DatasetProfile::new(ProfileName::Delicious).generate(20_000, 17);
        let sym = SymbolicTtmc::build(&tensor);
        let workers = 8;
        let mut dynamic_won_somewhere = false;
        for mode in 0..tensor.order() {
            let costs = update_list_costs(sym.mode(mode));
            let s = static_block_schedule(&costs, workers);
            let d =
                dynamic_chunked_schedule(&costs, workers, shim_chunk_size(costs.len(), workers));
            assert!(
                d.max_load() <= s.max_load() * 1.05,
                "mode {mode}: dynamic must not be meaningfully worse ({} vs {})",
                d.max_load(),
                s.max_load()
            );
            if d.max_load() < 0.95 * s.max_load() {
                dynamic_won_somewhere = true;
            }
        }
        assert!(
            dynamic_won_somewhere,
            "dynamic scheduling should win clearly on at least one skewed mode"
        );
    }

    #[test]
    fn single_worker_policies_agree() {
        let costs = zipf_costs(300, 1.3);
        let s = static_block_schedule(&costs, 1);
        let d = dynamic_chunked_schedule(&costs, 1, 16);
        // Both execute everything on worker 0 (summation order differs, so
        // compare up to float associativity).
        assert!((s.max_load() - d.max_load()).abs() < 1e-9);
        assert!((s.imbalance() - 1.0).abs() < 1e-12);
    }
}
