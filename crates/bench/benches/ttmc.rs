//! Microbenchmark of the nonzero-based TTMc kernel: parallel (rayon) versus
//! sequential, 3-mode and 4-mode tensors.

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::random_tensor;
use hooi::symbolic::SymbolicTtmc;
use hooi::ttmc::{ttmc_mode, ttmc_mode_sequential};
use linalg::Matrix;
use std::time::Duration;

fn factors_for(dims: &[usize], rank: usize, seed: u64) -> Vec<Matrix> {
    dims.iter()
        .enumerate()
        .map(|(m, &d)| Matrix::random(d, rank, seed + m as u64))
        .collect()
}

fn bench_ttmc(c: &mut Criterion) {
    let mut group = c.benchmark_group("ttmc");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let t3 = random_tensor(&[2000, 1500, 800], 60_000, 7);
    let f3 = factors_for(t3.dims(), 10, 1);
    let sym3 = SymbolicTtmc::build(&t3);
    group.bench_function("3mode_rank10_parallel", |b| {
        b.iter(|| ttmc_mode(&t3, sym3.mode(0), &f3, 0))
    });
    group.bench_function("3mode_rank10_sequential", |b| {
        b.iter(|| ttmc_mode_sequential(&t3, sym3.mode(0), &f3, 0))
    });

    let t4 = random_tensor(&[500, 400, 600, 300], 40_000, 9);
    let f4 = factors_for(t4.dims(), 5, 2);
    let sym4 = SymbolicTtmc::build(&t4);
    group.bench_function("4mode_rank5_parallel", |b| {
        b.iter(|| ttmc_mode(&t4, sym4.mode(2), &f4, 2))
    });
    group.finish();
}

criterion_group!(benches, bench_ttmc);
criterion_main!(benches);
