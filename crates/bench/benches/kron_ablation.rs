//! Ablation of the TTMc inner kernel: direct scaled-Kronecker accumulation
//! (specialized one/two-factor paths) versus always materializing the full
//! Kronecker product into a scratch buffer and then accumulating.

use criterion::{criterion_group, criterion_main, Criterion};
use linalg::Matrix;
use sptensor::kron::{accumulate_scaled_kron, accumulate_scaled_kron_materialized};
use std::time::Duration;

fn bench_kron(c: &mut Criterion) {
    let mut group = c.benchmark_group("kron_ablation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let u = Matrix::random(64, 10, 1);
    let v = Matrix::random(64, 10, 2);
    let rows: Vec<(usize, usize, f64)> = (0..20_000)
        .map(|k| ((k * 7) % 64, (k * 13) % 64, (k % 17) as f64 * 0.1 - 0.8))
        .collect();

    group.bench_function("direct_accumulation_2factors", |b| {
        b.iter(|| {
            let mut acc = vec![0.0f64; 100];
            let mut scratch = vec![0.0f64; 100];
            for &(i, j, x) in &rows {
                accumulate_scaled_kron(x, &[u.row(i), v.row(j)], &mut acc, &mut scratch);
            }
            acc
        })
    });
    group.bench_function("materialized_accumulation_2factors", |b| {
        b.iter(|| {
            let mut acc = vec![0.0f64; 100];
            let mut scratch = vec![0.0f64; 100];
            for &(i, j, x) in &rows {
                accumulate_scaled_kron_materialized(
                    x,
                    &[u.row(i), v.row(j)],
                    &mut acc,
                    &mut scratch,
                );
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_kron);
criterion_main!(benches);
