//! Ablation: reuse the symbolic TTMc across iterations (the paper's design)
//! versus rebuilding the update lists before every numeric TTMc.

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::random_tensor;
use hooi::symbolic::SymbolicTtmc;
use hooi::ttmc::ttmc_mode;
use linalg::Matrix;
use std::time::Duration;

fn bench_symbolic_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("symbolic_ablation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let tensor = random_tensor(&[1500, 1200, 900], 50_000, 5);
    let factors: Vec<Matrix> = tensor
        .dims()
        .iter()
        .enumerate()
        .map(|(m, &d)| Matrix::random(d, 8, m as u64))
        .collect();
    let sym = SymbolicTtmc::build(&tensor);

    // Reused symbolic data (the paper's scheme): one numeric TTMc sweep over
    // every mode.
    group.bench_function("reuse_symbolic_all_modes", |b| {
        b.iter(|| {
            for mode in 0..3 {
                let _ = ttmc_mode(&tensor, sym.mode(mode), &factors, mode);
            }
        })
    });
    // Rebuild the update lists before every numeric TTMc (what a naive
    // implementation does each iteration).
    group.bench_function("rebuild_symbolic_all_modes", |b| {
        b.iter(|| {
            let fresh = SymbolicTtmc::build(&tensor);
            for mode in 0..3 {
                let _ = ttmc_mode(&tensor, fresh.mode(mode), &factors, mode);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_symbolic_ablation);
criterion_main!(benches);
