//! Ablation of the fine-grain TRSVD design: operating on the
//! *sum-distributed* matricized TTMc result through a matrix-free sum
//! operator (the paper's choice) versus first assembling the sum into one
//! dense matrix (the design the paper rejects because assembling costs a
//! `Π_{t≠n} R_t`-sized message per row).
//!
//! The benchmark measures the per-TRSVD-solve cost of both designs on the
//! same partial results; the communication cost avoided by the matrix-free
//! design is reported by `table3`.

use criterion::{criterion_group, criterion_main, Criterion};
use linalg::lanczos::{lanczos_svd, LanczosOptions};
use linalg::operator::{DenseOperator, LinearOperator, SumOperator};
use linalg::Matrix;
use std::time::Duration;

fn bench_fine_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("fine_merge_ablation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    // Partial TTMc results of 8 simulated ranks: 3000 rows, width 100.
    let parts: Vec<Matrix> = (0..8)
        .map(|r| Matrix::random(3000, 100, r as u64))
        .collect();
    let opts = LanczosOptions::default();

    group.bench_function("matrix_free_sum_operator", |b| {
        b.iter(|| {
            let ops: Vec<DenseOperator> = parts.iter().map(DenseOperator::new).collect();
            let refs: Vec<&dyn LinearOperator> =
                ops.iter().map(|o| o as &dyn LinearOperator).collect();
            let sum = SumOperator::new(refs);
            lanczos_svd(&sum, 10, &opts)
        })
    });
    group.bench_function("assemble_then_svd", |b| {
        b.iter(|| {
            let mut assembled = parts[0].clone();
            for p in &parts[1..] {
                assembled.axpy(1.0, p);
            }
            let op = DenseOperator::new(&assembled);
            lanczos_svd(&op, 10, &opts)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fine_merge);
criterion_main!(benches);
