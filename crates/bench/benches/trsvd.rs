//! Microbenchmark of the TRSVD step on a matricized TTMc result.

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::random_tensor;
use hooi::config::TrsvdBackend;
use hooi::symbolic::SymbolicTtmc;
use hooi::trsvd::trsvd_factor;
use hooi::ttmc::ttmc_mode;
use linalg::Matrix;
use std::time::Duration;

fn bench_trsvd(c: &mut Criterion) {
    let mut group = c.benchmark_group("trsvd");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let tensor = random_tensor(&[4000, 300, 200], 50_000, 3);
    let factors: Vec<Matrix> = tensor
        .dims()
        .iter()
        .enumerate()
        .map(|(m, &d)| Matrix::random(d, 10, m as u64))
        .collect();
    let sym = SymbolicTtmc::build(&tensor);
    let compact = ttmc_mode(&tensor, sym.mode(0), &factors, 0);

    group.bench_function("lanczos_rank10", |b| {
        b.iter(|| {
            trsvd_factor(
                &compact,
                sym.mode(0),
                tensor.dims()[0],
                10,
                TrsvdBackend::Lanczos,
                1,
            )
        })
    });
    group.bench_function("randomized_rank10", |b| {
        b.iter(|| {
            trsvd_factor(
                &compact,
                sym.mode(0),
                tensor.dims()[0],
                10,
                TrsvdBackend::Randomized,
                1,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_trsvd);
criterion_main!(benches);
