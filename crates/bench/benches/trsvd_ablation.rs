//! Ablation of the TRSVD backend on a full HOOI run: matrix-free Lanczos
//! (the SLEPc stand-in and default) versus the randomized range finder
//! versus assembling the matrix and taking a dense SVD.

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::{DatasetProfile, ProfileName};
use hooi::config::TrsvdBackend;
use hooi::{PlanOptions, TuckerConfig, TuckerSolver};
use std::time::Duration;

fn bench_trsvd_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trsvd_ablation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    let profile = DatasetProfile::new(ProfileName::Netflix);
    let tensor = profile.generate(25_000, 11);
    let base = TuckerConfig::new(profile.paper_ranks().to_vec())
        .max_iterations(1)
        .fit_tolerance(-1.0)
        .seed(3);

    // One plan serves all three backends: the ablation varies only the
    // per-solve configuration.
    let mut solver = TuckerSolver::plan(&tensor, PlanOptions::new()).unwrap();
    for (label, backend) in [
        ("lanczos", TrsvdBackend::Lanczos),
        ("randomized", TrsvdBackend::Randomized),
        ("dense", TrsvdBackend::Dense),
    ] {
        let config = base.clone().trsvd(backend);
        group.bench_function(label, |b| b.iter(|| solver.solve(&config).unwrap()));
    }
    group.finish();
}

criterion_group!(benches, bench_trsvd_ablation);
criterion_main!(benches);
