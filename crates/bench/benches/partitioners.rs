//! Benchmark of the partitioners on the fine-grain hypergraph (the
//! preprocessing cost the paper amortizes across repeated decompositions).

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::{DatasetProfile, ProfileName};
use partition::{fine_grain_hypergraph, partitioners, random_partition};
use std::time::Duration;

fn bench_partitioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioners");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    let profile = DatasetProfile::new(ProfileName::Nell);
    let tensor = profile.generate(30_000, 7);
    let h = fine_grain_hypergraph(&tensor);

    group.bench_function("random_64parts", |b| {
        b.iter(|| random_partition(h.num_vertices(), 64, 3))
    });
    group.bench_function("greedy_64parts", |b| {
        b.iter(|| partitioners::greedy_partition(&h, 64, 3))
    });
    group.bench_function("greedy_plus_fm_64parts", |b| {
        b.iter(|| partitioners::hypergraph_partition(&h, 64, 3))
    });
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
