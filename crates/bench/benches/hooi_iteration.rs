//! End-to-end benchmark of one HOOI iteration on dataset-profile tensors
//! (the per-iteration time is what every table of the paper reports).

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::{DatasetProfile, ProfileName};
use hooi::{PlanOptions, TuckerConfig, TuckerSolver};
use std::time::Duration;

fn bench_hooi(c: &mut Criterion) {
    let mut group = c.benchmark_group("hooi_iteration");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    for name in [ProfileName::Netflix, ProfileName::Flickr] {
        let profile = DatasetProfile::new(name);
        let tensor = profile.generate(30_000, 42);
        let config = TuckerConfig::new(profile.paper_ranks().to_vec())
            .max_iterations(1)
            .fit_tolerance(-1.0)
            .seed(5);
        // Plan once outside the measurement: what every table of the paper
        // reports is the per-iteration cost, not the symbolic preprocessing.
        let mut solver = TuckerSolver::plan(&tensor, PlanOptions::new()).unwrap();
        group.bench_function(name.as_str(), |b| b.iter(|| solver.solve(&config).unwrap()));
    }
    group.finish();
}

criterion_group!(benches, bench_hooi);
criterion_main!(benches);
