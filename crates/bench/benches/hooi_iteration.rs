//! End-to-end benchmark of one HOOI iteration on dataset-profile tensors
//! (the per-iteration time is what every table of the paper reports).

use criterion::{criterion_group, criterion_main, Criterion};
use datagen::{DatasetProfile, ProfileName};
use hooi::{tucker_hooi, TuckerConfig};
use std::time::Duration;

fn bench_hooi(c: &mut Criterion) {
    let mut group = c.benchmark_group("hooi_iteration");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(3));

    for name in [ProfileName::Netflix, ProfileName::Flickr] {
        let profile = DatasetProfile::new(name);
        let tensor = profile.generate(30_000, 42);
        let config = TuckerConfig::new(profile.paper_ranks().to_vec())
            .max_iterations(1)
            .fit_tolerance(-1.0)
            .seed(5);
        group.bench_function(name.as_str(), |b| b.iter(|| tucker_hooi(&tensor, &config)));
    }
    group.finish();
}

criterion_group!(benches, bench_hooi);
criterion_main!(benches);
