//! Golden-file tests for the table binaries' `--tns` mode.
//!
//! Each table binary is run against the committed fixture tensor
//! (`tests/fixtures/golden.tns`) with `--check` (which additionally proves
//! the CSF and flat TTMc paths bit-identical on the fixture), and its
//! stdout is compared **byte for byte** against a committed snapshot.
//! Everything the `--tns` mode prints is a deterministic function of the
//! input — simulated cost-model seconds, plan byte counts, layout
//! resolutions — so any snapshot drift is a behaviour change, not noise.
//! Table V passes `--sim-only` to skip the wall-clock-measured sweep.
//!
//! To update the snapshots after an intentional change:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test -p bench --test tables_golden
//! ```

use std::process::Command;

fn fixture_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/golden.tns")
}

fn run_golden(name: &str, exe: &str, extra: &[&str]) {
    let out = Command::new(exe)
        .args(["--tns", fixture_path(), "--ranks", "3,3,3", "--check"])
        .args(extra)
        .output()
        .unwrap_or_else(|e| panic!("could not spawn {name}: {e}"));
    assert!(
        out.status.success(),
        "{name} failed with {:?}\nstderr:\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let snapshot = format!("{}/tests/fixtures/{name}.out", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::write(&snapshot, &out.stdout)
            .unwrap_or_else(|e| panic!("could not bless {snapshot}: {e}"));
        return;
    }
    let expected = std::fs::read(&snapshot).unwrap_or_else(|e| {
        panic!("missing snapshot {snapshot}: {e}\n(re-bless with GOLDEN_BLESS=1)")
    });
    assert!(
        out.stdout == expected,
        "{name} stdout diverged from {snapshot}\n\
         --- expected ---\n{}\n--- actual ---\n{}\n\
         (if the change is intentional, re-bless with GOLDEN_BLESS=1)",
        String::from_utf8_lossy(&expected),
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn table1_matches_snapshot() {
    run_golden("table1", env!("CARGO_BIN_EXE_table1"), &[]);
}

#[test]
fn table2_matches_snapshot() {
    run_golden("table2", env!("CARGO_BIN_EXE_table2"), &[]);
}

#[test]
fn table3_matches_snapshot() {
    run_golden("table3", env!("CARGO_BIN_EXE_table3"), &[]);
}

#[test]
fn table4_matches_snapshot() {
    run_golden("table4", env!("CARGO_BIN_EXE_table4"), &[]);
}

#[test]
fn table5_matches_snapshot() {
    run_golden("table5", env!("CARGO_BIN_EXE_table5"), &["--sim-only"]);
}

/// The fixture itself must stay loadable through the bounded streaming
/// reader at an adversarially small chunk size, with the documented peak
/// buffer bound holding exactly.
#[test]
fn fixture_streams_under_a_tiny_chunk() {
    let options = sptensor::io::StreamOptions::new().chunk_nonzeros(7);
    let (tensor, stats) =
        sptensor::io::read_tns_file_streamed(fixture_path(), &options).expect("fixture reads");
    assert_eq!(tensor.nnz(), 500);
    assert_eq!(tensor.order(), 3);
    let word = std::mem::size_of::<usize>();
    assert!(stats.peak_buffer_bytes <= 7 * (3 + 2) * word);
    assert_eq!(stats.chunks, 500usize.div_ceil(7));
}
