//! Knowledge-base analysis scenario (the paper's NELL workload): an
//! `entity × relation × entity` tensor of belief scores is decomposed and
//! the dominant relation clusters are read off the relation-mode factor.
//!
//! ```text
//! cargo run --release --example knowledge_base
//! ```

use tucker_repro::prelude::*;

fn main() -> Result<(), TuckerError> {
    // Scaled NELL-profile tensor: a huge entity mode, a tiny skewed relation
    // mode and a large second entity mode.
    let profile = DatasetProfile::new(ProfileName::Nell);
    let tensor = profile.generate(60_000, 7);
    println!(
        "knowledge tensor (entity x relation x entity): {:?}, {} triples",
        tensor.dims(),
        tensor.nnz()
    );

    let stats = sptensor::stats::tensor_stats(&tensor);
    for m in &stats.modes {
        println!(
            "  mode {}: {} indices, {} non-empty, busiest slice {} triples (imbalance {:.1}x)",
            m.mode, m.dim, m.nonempty_slices, m.max_slice_nnz, m.imbalance
        );
    }

    // Decompose with HOSVD initialization (cheap here because the relation
    // mode is tiny) and the paper's rank 10.
    let config = TuckerConfig::new(vec![10, 10, 10])
        .max_iterations(6)
        .initialization(Initialization::Random)
        .seed(11);
    let model = tucker_hooi(&tensor, &config)?;
    println!(
        "\nHOOI finished: fit {:.4} after {} iterations",
        model.final_fit(),
        model.iterations
    );

    // The relation-mode factor (mode 1) groups relations with similar
    // entity-entity co-occurrence patterns: report, for each latent
    // component, the relations loading most strongly on it.
    let relation_factor: &Matrix = &model.factors[1];
    println!("\ntop relations per latent component (relation ids):");
    for component in 0..relation_factor.ncols().min(4) {
        let mut loadings: Vec<(usize, f64)> = (0..relation_factor.nrows())
            .map(|r| (r, relation_factor[(r, component)].abs()))
            .collect();
        loadings.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let top: Vec<String> = loadings
            .iter()
            .take(5)
            .map(|(r, w)| format!("rel{r} ({w:.3})"))
            .collect();
        println!("  component {component}: {}", top.join(", "));
    }
    println!("\n(The Tucker core links these relation components to entity components in");
    println!(" both entity modes — the 'identifying relations among factors' use case the");
    println!(" paper cites for the Tucker formulation.)");
    Ok(())
}
