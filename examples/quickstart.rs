//! Quickstart: decompose a small sparse tensor with HOOI and inspect the
//! result.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tucker_repro::prelude::*;

fn main() {
    // 1. Build (or load) a sparse tensor.  Here: a planted low-rank tensor
    //    with noise, so we know what the decomposition should find.
    let planted = lowrank_tensor(&LowRankSpec {
        dims: vec![200, 150, 100],
        ranks: vec![4, 3, 2],
        nnz: 40_000,
        noise: 0.01,
        seed: 42,
    });
    let tensor: &SparseTensor = &planted.tensor;
    println!(
        "tensor: {:?} with {} nonzeros (density {:.2e})",
        tensor.dims(),
        tensor.nnz(),
        tensor.density()
    );

    // 2. Configure the decomposition: ranks per mode, iteration budget,
    //    TRSVD backend (Lanczos = the paper's matrix-free iterative solver).
    let config = TuckerConfig::new(vec![4, 3, 2])
        .max_iterations(10)
        .fit_tolerance(1e-6)
        .trsvd(TrsvdBackend::Lanczos)
        .seed(7);

    // 3. Run shared-memory parallel HOOI (Algorithm 3 of the paper).  The
    //    whole pipeline executes inside a scoped thread pool sized by
    //    `num_threads`; 0 means "all hardware threads".  Running the same
    //    configuration with 1 thread first shows the TTMc wall time
    //    responding to the knob.
    let sequential = tucker_hooi(tensor, &config.clone().num_threads(1));
    let decomposition = tucker_hooi(tensor, &config);
    let t1 = sequential.timings.ttmc.as_secs_f64() * 1e3;
    let tn = decomposition.timings.ttmc.as_secs_f64() * 1e3;
    println!(
        "TTMc wall time: {t1:.1} ms with 1 thread, {tn:.1} ms with all {} threads ({:.2}x)",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        t1 / tn.max(1e-9),
    );

    // 4. Inspect the result.
    println!("core tensor dims: {:?}", decomposition.core.dims());
    println!("iterations run:   {}", decomposition.iterations);
    println!("fit per iteration: {:?}", decomposition.fits);
    println!(
        "leading singular values of mode 0: {:?}",
        decomposition.singular_values[0]
    );
    let (ttmc, trsvd, core) = decomposition.timings.relative_shares();
    println!(
        "time shares: TTMc {ttmc:.1}%, TRSVD {trsvd:.1}%, core {core:.1}%  (symbolic: {:.1} ms)",
        decomposition.timings.symbolic.as_secs_f64() * 1e3
    );

    // 5. Evaluate the model at the observed entries.
    let rmse = hooi::fit::rmse_at_nonzeros(tensor, &decomposition.core, &decomposition.factors);
    println!("RMSE at the stored nonzeros: {rmse:.4}");
    println!(
        "final fit: {:.4} (1.0 = exact reconstruction)",
        decomposition.final_fit()
    );
}
