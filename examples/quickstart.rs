//! Quickstart: plan a solver session once, then decompose at several
//! configurations while watching convergence through an observer.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use tucker_repro::prelude::*;

fn main() -> Result<(), TuckerError> {
    // 1. Build (or load) a sparse tensor.  Here: a planted low-rank tensor
    //    with noise, so we know what the decomposition should find.
    let planted = lowrank_tensor(&LowRankSpec {
        dims: vec![200, 150, 100],
        ranks: vec![4, 3, 2],
        nnz: 40_000,
        noise: 0.01,
        seed: 42,
    });
    let tensor: &SparseTensor = &planted.tensor;
    println!(
        "tensor: {:?} with {} nonzeros (density {:.2e})",
        tensor.dims(),
        tensor.nnz(),
        tensor.density()
    );

    // 2. Plan a session: the symbolic TTMc analysis runs exactly once, and
    //    the session owns the thread pool (0 = all hardware threads) plus
    //    all scratch buffers.
    let mut solver = TuckerSolver::plan(tensor, PlanOptions::new())?;
    println!(
        "planned: symbolic analysis took {:.1} ms on {} threads",
        solver.symbolic_time().as_secs_f64() * 1e3,
        solver.num_threads()
    );

    // 3. Solve with the planted ranks, watching every iteration through an
    //    observer that can also request an early stop once the fit is good
    //    enough.
    let config = TuckerConfig::new(vec![4, 3, 2])
        .max_iterations(10)
        .fit_tolerance(1e-6)
        .trsvd(TrsvdBackend::Lanczos)
        .seed(7);
    let decomposition = solver.solve_with_observer(&config, &mut |r: &IterationReport| {
        println!(
            "  iteration {}: fit {:.5} (+{:.1e}), TTMc {:.1} ms, TRSVD {:.1} ms",
            r.iteration,
            r.fit,
            r.fit_improvement,
            r.ttmc.as_secs_f64() * 1e3,
            r.trsvd.as_secs_f64() * 1e3,
        );
        if r.fit > 0.999 {
            IterationControl::Stop
        } else {
            IterationControl::Continue
        }
    })?;

    // 4. Solve again — different ranks, same plan.  No symbolic work is
    //    redone: the second solve reports zero symbolic time.
    let coarse = solver.solve(&TuckerConfig::new(vec![2, 2, 2]).max_iterations(5))?;
    println!(
        "re-solve at ranks {:?}: fit {:.4}, symbolic time {:?} (reused from the plan)",
        coarse.ranks(),
        coarse.final_fit(),
        coarse.timings.symbolic
    );
    assert_eq!(coarse.timings.symbolic, std::time::Duration::ZERO);

    // 5. Thread scaling: a session's pool is fixed at plan time, so a
    //    1-thread comparison is simply a second (sequential) plan.  On a
    //    multi-core host the TTMc wall time responds to the knob.
    let two_iters = config.clone().max_iterations(2);
    let sequential =
        TuckerSolver::plan(tensor, PlanOptions::new().num_threads(1))?.solve(&two_iters)?;
    let parallel = solver.solve(&two_iters)?;
    let t1 = sequential.timings.ttmc.as_secs_f64() * 1e3;
    let tn = parallel.timings.ttmc.as_secs_f64() * 1e3;
    println!(
        "TTMc wall time over 2 iterations: {t1:.1} ms with 1 thread, {tn:.1} ms with {} threads ({:.2}x)",
        solver.num_threads(),
        t1 / tn.max(1e-9)
    );

    // 6. Inspect the main result.
    println!("core tensor dims: {:?}", decomposition.core.dims());
    println!("iterations run:   {}", decomposition.iterations);
    println!("fit per iteration: {:?}", decomposition.fits);
    println!(
        "leading singular values of mode 0: {:?}",
        decomposition.singular_values[0]
    );
    let (ttmc, trsvd, core) = decomposition.timings.relative_shares();
    println!(
        "time shares: TTMc {ttmc:.1}%, TRSVD {trsvd:.1}%, core {core:.1}%  (init: {:.1} ms)",
        decomposition.timings.init.as_secs_f64() * 1e3
    );

    // 7. Evaluate the model at the observed entries.
    let rmse = hooi::fit::rmse_at_nonzeros(tensor, &decomposition.core, &decomposition.factors);
    println!("RMSE at the stored nonzeros: {rmse:.4}");
    println!(
        "final fit: {:.4} (1.0 = exact reconstruction)",
        decomposition.final_fit()
    );
    Ok(())
}
