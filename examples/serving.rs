//! Serving scenario: one decomposition service, several tenants.
//!
//! Two teams share one box.  The "movies" team keeps a Netflix-profile
//! rating tensor hot and refreshes its model on a schedule; the "tags"
//! team drops in occasionally with a Flickr-profile tensor.  The service
//! runs both on ONE thread pool, schedules them cheapest-charged-first,
//! caches plans under a memory budget, and answers predictions from the
//! latest model even after the plan is evicted.
//!
//! ```text
//! cargo run --release --example serving
//! ```

use std::sync::Arc;
use std::time::Duration;
use tucker_repro::prelude::*;

fn main() -> Result<(), TuckerError> {
    let movies = Arc::new(DatasetProfile::new(ProfileName::Netflix).generate(30_000, 7));
    let tags = Arc::new(DatasetProfile::new(ProfileName::Flickr).generate(20_000, 8));
    println!(
        "movies: {:?} with {} nonzeros; tags: {:?} with {} nonzeros",
        movies.dims(),
        movies.nnz(),
        tags.dims(),
        tags.nnz()
    );

    // One shared pool, a 64 MiB plan cache.
    let mut svc = DecompositionService::new(
        ServiceOptions::new()
            .num_threads(2)
            .plan_cache_bytes(64 << 20),
    )?;

    // Both teams ingest (the plan is built once here) and ask for a model.
    svc.submit(
        "movies-team",
        Request::Ingest {
            tensor_id: "ratings".into(),
            tensor: Arc::clone(&movies),
        },
    );
    svc.submit(
        "tags-team",
        Request::Ingest {
            tensor_id: "photo-tags".into(),
            tensor: Arc::clone(&tags),
        },
    );
    svc.submit(
        "movies-team",
        Request::Decompose {
            tensor_id: "ratings".into(),
            ranks: vec![8, 8, 8],
            seed: 3,
            max_iters: 6,
            deadline: None,
        },
    );
    // The tags team is in a hurry: a wall-clock budget counted from
    // submission.  If HOOI cannot finish in time, the best model so far
    // comes back flagged `truncated` instead of an error.
    svc.submit(
        "tags-team",
        Request::Decompose {
            tensor_id: "photo-tags".into(),
            ranks: vec![4, 4, 4, 4],
            seed: 5,
            max_iters: 6,
            deadline: Some(Duration::from_secs(30)),
        },
    );
    for done in svc.run_until_idle() {
        match done.outcome? {
            Response::Ingested {
                tensor_id,
                plan_bytes,
            } => println!(
                "[{}] planned '{tensor_id}' ({} plan bytes cached)",
                done.tenant,
                plan_bytes.unwrap_or(0)
            ),
            Response::Decomposed {
                decomposition,
                truncated,
            } => println!(
                "[{}] model ready: fit {:.4} after {} iterations{} \
                 (plan cache {})",
                done.tenant,
                decomposition.final_fit(),
                decomposition.iterations,
                if truncated {
                    " (deadline-truncated)"
                } else {
                    ""
                },
                if done.plan_cache_hit == Some(true) {
                    "hit"
                } else {
                    "miss"
                },
            ),
            other => println!("[{}] {other:?}", done.tenant),
        }
    }

    // Predictions read the latest model; they keep working even if memory
    // pressure later evicts the plan, because models live in the registry.
    svc.submit(
        "movies-team",
        Request::Predict {
            tensor_id: "ratings".into(),
            indices: vec![vec![0, 0, 0], vec![1, 2, 3], vec![5, 10, 2]],
        },
    );
    let done = svc.run_until_idle().pop().expect("one prediction");
    if let Ok(Response::Predicted { values }) = done.outcome {
        println!("[movies-team] scores for three (user, movie, week) cells: {values:?}");
    }

    let stats = svc.stats();
    println!(
        "\nserved {} requests ({} failed); plan cache: {:.0}% hits, {} bytes held",
        stats.completed,
        stats.failed,
        100.0 * stats.cache_hit_rate(),
        stats.plan_cache_bytes
    );
    for (tenant, flops) in &stats.charged_flops {
        println!("  {tenant:<12} charged {flops:>12} cost-model flops");
    }
    Ok(())
}
