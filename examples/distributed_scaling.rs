//! Distributed-memory scenario: partition a tensor for a simulated cluster,
//! verify that the distributed algorithm computes exactly the same
//! decomposition as the shared-memory solver, and report the per-rank work,
//! communication volumes and simulated strong-scaling curve for the paper's
//! four configurations.
//!
//! ```text
//! cargo run --release --example distributed_scaling
//! ```

use tucker_repro::prelude::*;

fn main() -> Result<(), TuckerError> {
    let profile = DatasetProfile::new(ProfileName::Flickr);
    let tensor = profile.generate(20_000, 5);
    let ranks = profile.paper_ranks().to_vec();
    println!(
        "Flickr-profile tensor {:?} with {} nonzeros, ranks {:?}",
        tensor.dims(),
        tensor.nnz(),
        ranks
    );

    // 1. Correctness: the fine-grain distributed execution on 8 simulated
    //    ranks must reproduce the shared-memory result.
    let tucker = TuckerConfig::new(ranks.clone()).max_iterations(3).seed(17);
    let shared = tucker_hooi(&tensor, &tucker)?;
    let config = SimConfig::new(8, Grain::Fine, PartitionMethod::Hypergraph, ranks.clone());
    let setup = DistributedSetup::build(&tensor, &config);
    let distributed = distsim::exec::distributed_hooi(&tensor, &setup, &tucker)?;
    println!(
        "\nshared-memory fit: {:.6}   distributed (8 ranks, fine-hp) fit: {:.6}",
        shared.final_fit(),
        distributed.final_fit()
    );

    // 2. Per-rank statistics for the 8-rank fine-hp run (a miniature of the
    //    paper's Table III).
    let stats = distsim::iteration_stats(&tensor, &setup, 20);
    println!("\nper-mode statistics, 8 ranks, fine-hp (max / avg over ranks):");
    for m in &stats.modes {
        println!(
            "  mode {}: W_TTMc {} / {:.0}   W_TRSVD {} / {:.0}   comm words {} / {:.0}",
            m.mode + 1,
            distsim::ModeRankStats::max(&m.ttmc_nonzeros),
            distsim::ModeRankStats::avg(&m.ttmc_nonzeros),
            distsim::ModeRankStats::max(&m.trsvd_rows),
            distsim::ModeRankStats::avg(&m.trsvd_rows),
            distsim::ModeRankStats::max(&m.comm_volume),
            distsim::ModeRankStats::avg(&m.comm_volume),
        );
    }

    // 3. Simulated strong scaling (a miniature of Table II).
    println!("\nsimulated seconds per HOOI iteration (BG/Q cost model, 32 threads/rank):");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "#ranks", "fine-hp", "fine-rd", "coarse-hp", "coarse-bl"
    );
    let machine = MachineModel::bluegene_q();
    for &p in &[1usize, 2, 4, 8, 16, 32] {
        let mut row = format!("{p:>8}");
        for (grain, method) in [
            (Grain::Fine, PartitionMethod::Hypergraph),
            (Grain::Fine, PartitionMethod::Random),
            (Grain::Coarse, PartitionMethod::Hypergraph),
            (Grain::Coarse, PartitionMethod::Block),
        ] {
            let c = SimConfig::new(p, grain, method, ranks.clone());
            let s = DistributedSetup::build(&tensor, &c);
            let cost = simulate_iteration(&tensor, &s, &machine, 20);
            row.push_str(&format!(" {:>12.4}", cost.total_seconds()));
        }
        println!("{row}");
    }
    Ok(())
}
