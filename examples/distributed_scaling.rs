//! Distributed-memory scenario, in three acts:
//!
//! 1. **Execute** the distributed algorithm for real: 8 message-passing
//!    ranks (long-lived threads exchanging expand/fold messages through the
//!    `Communicator` abstraction) decompose a Flickr-profile tensor and the
//!    result is compared *bit for bit* against the shared-memory
//!    `TuckerSolver`.
//! 2. **Cross-validate** the cost model: the words the executor actually
//!    moved (measured by the communicator's counters) against the words
//!    `iteration_stats` predicted.
//! 3. **Simulate** strong scaling to 32 ranks with the BlueGene/Q cost
//!    model — the part that extrapolates beyond one machine.
//!
//! ```text
//! cargo run --release --example distributed_scaling
//! ```

use tucker_repro::distsim::{iteration_stats, Phase};
use tucker_repro::prelude::*;

fn main() -> Result<(), TuckerError> {
    let profile = DatasetProfile::new(ProfileName::Flickr);
    let tensor = profile.generate(20_000, 5);
    let ranks = profile.paper_ranks().to_vec();
    println!(
        "Flickr-profile tensor {:?} with {} nonzeros, ranks {:?}",
        tensor.dims(),
        tensor.nnz(),
        ranks
    );

    // 1. Execute: 8 fine-grain ranks over the channel backend must
    //    reproduce the shared-memory result exactly, not approximately.
    let tucker = TuckerConfig::new(ranks.clone()).max_iterations(3).seed(17);
    // The executor replays the per-mode TTMc arithmetic, so the reference
    // solver pins `PerMode` (the dimension-tree default reassociates the
    // accumulation and matches only within tolerance).
    let mut solver = TuckerSolver::plan(
        &tensor,
        PlanOptions::new()
            .num_threads(1)
            .ttmc_strategy(TtmcStrategy::PerMode),
    )?;
    let shared = solver.solve(&tucker)?;
    let config = SimConfig::new(8, Grain::Fine, PartitionMethod::Hypergraph, ranks.clone());
    let setup = DistributedSetup::build(&tensor, &config);
    let run = execute_hooi(&tensor, &setup, &tucker, &ExecOptions::default())?;
    let identical = run.decomposition.factors == shared.factors
        && run.decomposition.core.as_slice() == shared.core.as_slice()
        && run.decomposition.fits == shared.fits;
    println!(
        "\n8 ranks, fine-hp, {} backend: fit {:.6} in {:.1} ms wall — bit-identical to TuckerSolver: {}",
        run.backend.label(),
        run.decomposition.final_fit(),
        run.wall.as_secs_f64() * 1e3,
        identical
    );
    assert!(identical, "executor must match the solver exactly");
    if loopback_tcp_available() {
        let tcp = execute_hooi(
            &tensor,
            &setup,
            &tucker,
            &ExecOptions::new().backend(CommBackend::Tcp),
        )?;
        println!(
            "same run over real loopback TCP sockets: fit {:.6} in {:.1} ms wall, {} KB through the kernel",
            tcp.decomposition.final_fit(),
            tcp.wall.as_secs_f64() * 1e3,
            tcp.total_bytes() / 1024
        );
    } else {
        println!("(loopback TCP unavailable here — skipping the socket backend)");
    }

    // 2. Cross-validate: measured expand/fold words vs the analytic
    //    prediction, rank by rank.
    let stats = iteration_stats(&tensor, &setup, 20);
    let iters = run.decomposition.iterations as u64;
    let expand_pred = stats.expand_words_per_rank();
    let fold_pred = stats.fold_words_per_rank();
    println!("\nmeasured vs predicted words per rank ({iters} iterations):");
    println!(
        "{:>5} {:>14} {:>14} {:>14} {:>14}",
        "rank", "expand-meas", "expand-pred", "fold-meas", "fold-pred"
    );
    for (r, counters) in run.comm.iter().enumerate() {
        let em = counters.phase(Phase::Expand).floats_transferred();
        let fm = counters.phase(Phase::Fold).floats_transferred();
        let ep = iters * expand_pred[r];
        let fp = iters * fold_pred[r];
        assert_eq!(em, ep, "rank {r}: expand prediction missed");
        assert_eq!(fm, fp, "rank {r}: fold prediction missed");
        println!("{r:>5} {em:>14} {ep:>14} {fm:>14} {fp:>14}");
    }

    // 3. Simulated strong scaling (a miniature of Table II).
    println!("\nsimulated seconds per HOOI iteration (BG/Q cost model, 32 threads/rank):");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12}",
        "#ranks", "fine-hp", "fine-rd", "coarse-hp", "coarse-bl"
    );
    let machine = MachineModel::bluegene_q();
    for &p in &[1usize, 2, 4, 8, 16, 32] {
        let mut row = format!("{p:>8}");
        for (grain, method) in [
            (Grain::Fine, PartitionMethod::Hypergraph),
            (Grain::Fine, PartitionMethod::Random),
            (Grain::Coarse, PartitionMethod::Hypergraph),
            (Grain::Coarse, PartitionMethod::Block),
        ] {
            let c = SimConfig::new(p, grain, method, ranks.clone());
            let s = DistributedSetup::build(&tensor, &c);
            let cost = simulate_iteration(&tensor, &s, &machine, 20);
            row.push_str(&format!(" {:>12.4}", cost.total_seconds()));
        }
        println!("{row}");
    }
    Ok(())
}
