//! Recommender-system scenario (the paper's Netflix workload): a
//! `user × item × time` rating tensor is decomposed with Tucker/HOOI and
//! the factors are used to predict held-out ratings.
//!
//! ```text
//! cargo run --release --example recommender
//! ```

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tucker_repro::prelude::*;

fn main() -> Result<(), TuckerError> {
    // A scaled Netflix-profile tensor: user x movie x time with Zipf-skewed
    // popularity, integer-like rating values.
    let profile = DatasetProfile::new(ProfileName::Netflix);
    let full = profile.generate(50_000, 2016);
    println!("rating tensor: {:?}, {} ratings", full.dims(), full.nnz());

    // Hold out 10% of the ratings for evaluation.
    let mut rng = SmallRng::seed_from_u64(99);
    let mut train_ids = Vec::new();
    let mut test_ids = Vec::new();
    for k in 0..full.nnz() {
        if rng.gen::<f64>() < 0.10 {
            test_ids.push(k);
        } else {
            train_ids.push(k);
        }
    }
    let train = full.subset(&train_ids);
    let test = full.subset(&test_ids);
    println!(
        "train: {} ratings, test: {} ratings",
        train.nnz(),
        test.nnz()
    );

    // Plan a session on the training tensor and decompose with the paper's
    // ranks (10 per mode).  A production recommender re-solves the same
    // plan on a schedule (new seeds, rank sweeps) as ratings change weight.
    let mut solver = TuckerSolver::plan(&train, PlanOptions::new())?;
    let config = TuckerConfig::new(vec![10, 10, 10])
        .max_iterations(8)
        .seed(3);
    let model = solver.solve(&config)?;
    println!(
        "fit on training data after {} iterations: {:.4}",
        model.iterations,
        model.final_fit()
    );

    // Predict the held-out entries from the model and compare against a
    // baseline that predicts the global mean rating.  The whole test set is
    // scored in one `predict_many` batch — the serving shape — which
    // enumerates the core's nonzero terms once instead of per rating.
    let mean: f64 = train.values().iter().sum::<f64>() / train.nnz() as f64;
    let queries: Vec<Vec<usize>> = test.iter().map(|(idx, _)| idx.to_vec()).collect();
    let predicted = model.predict_many(&queries);
    let mut model_se = 0.0;
    let mut baseline_se = 0.0;
    for ((_, actual), predicted) in test.iter().zip(&predicted) {
        model_se += (actual - predicted).powi(2);
        baseline_se += (actual - mean).powi(2);
    }
    let n = test.nnz() as f64;
    println!(
        "held-out RMSE  (Tucker model): {:.4}",
        (model_se / n).sqrt()
    );
    println!(
        "held-out RMSE  (global mean):  {:.4}",
        (baseline_se / n).sqrt()
    );
    println!();
    println!("Note: with zero-imputed training (standard sparse Tucker), predictions are");
    println!("shrunk toward zero; applications typically post-scale or use weighted variants.");
    Ok(())
}
