//! Social-tagging scenario (the paper's Delicious/Flickr workloads): a
//! 4-mode `time × user × resource × tag` tensor is decomposed with rank 5
//! per mode — the configuration the paper uses for its 4-mode tensors —
//! and tag/user components are reported.
//!
//! ```text
//! cargo run --release --example tag_analysis
//! ```

use tucker_repro::prelude::*;

fn main() -> Result<(), TuckerError> {
    let profile = DatasetProfile::new(ProfileName::Delicious);
    let tensor = profile.generate(50_000, 13);
    println!(
        "bookmark tensor (time x user x resource x tag): {:?}, {} bookmarks",
        tensor.dims(),
        tensor.nnz()
    );

    // The 3rd mode (resources) is enormous relative to the others — the
    // property that makes the TRSVD step dominant for these datasets in the
    // paper's Table IV.
    let config = TuckerConfig::new(vec![5, 5, 5, 5])
        .max_iterations(5)
        .seed(4);
    let model = tucker_hooi(&tensor, &config)?;
    println!(
        "fit {:.4} after {} iterations",
        model.final_fit(),
        model.iterations
    );
    let (ttmc, trsvd, core) = model.timings.relative_shares();
    println!("time shares: TTMc {ttmc:.1}%  TRSVD {trsvd:.1}%  core {core:.1}%");

    // Tag components: which tags dominate each latent component of mode 3.
    let tag_factor: &Matrix = &model.factors[3];
    println!("\ntop tags per latent component (tag ids):");
    for component in 0..tag_factor.ncols() {
        let mut loadings: Vec<(usize, f64)> = (0..tag_factor.nrows())
            .map(|t| (t, tag_factor[(t, component)].abs()))
            .collect();
        loadings.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let top: Vec<String> = loadings
            .iter()
            .take(4)
            .map(|(t, w)| format!("tag{t} ({w:.3})"))
            .collect();
        println!("  component {component}: {}", top.join(", "));
    }

    // The core tensor couples time, user, resource and tag components; its
    // largest entries are the strongest cross-mode associations (the tag
    // recommendation signal of the paper's motivating applications).
    let mut entries: Vec<(Vec<usize>, f64)> = Vec::new();
    let mut idx = vec![0usize; 4];
    for pos in 0..model.core.len() {
        model.core.unlinearize(pos, &mut idx);
        entries.push((idx.clone(), model.core.as_slice()[pos]));
    }
    entries.sort_by(|a, b| b.1.abs().partial_cmp(&a.1.abs()).unwrap());
    println!("\nstrongest core couplings (time, user, resource, tag) -> weight:");
    for (idx, w) in entries.iter().take(5) {
        println!("  {:?} -> {w:.4}", idx);
    }
    Ok(())
}
