//! HyperTensor-RS — a Rust reproduction of "High Performance Parallel
//! Algorithms for the Tucker Decomposition of Sparse Tensors"
//! (Kaya & Uçar, ICPP 2016).
//!
//! This root crate re-exports the workspace's public API so that the
//! examples and integration tests can use one import path.  See the
//! individual crates for the actual implementations:
//!
//! * [`hooi`] — the shared-memory parallel HOOI solver (symbolic TTMc,
//!   nonzero-based TTMc, matrix-free TRSVD, MET baseline),
//! * [`distsim`] — the distributed-memory simulator (coarse/fine grain,
//!   statistics and cost model) and the message-passing executor that runs
//!   Algorithm 4 over real channel/TCP backends, bit-identically to the
//!   shared-memory solver, with typed comm errors, recv deadlines, a
//!   graceful abort protocol and deterministic fault injection
//!   ([`distsim::FaultPlan`]),
//! * [`partition`] — hypergraph models and partitioners,
//! * [`service`] — the multi-tenant decomposition service: a tensor
//!   registry with one shared thread pool, a memory-budgeted plan cache,
//!   cheapest-deficit-first cross-tenant scheduling and deadline-aware
//!   solves,
//! * [`sptensor`], [`linalg`], [`datagen`] — the substrates.
//!
//! # Quickstart
//!
//! Plan once, solve many times.  [`TuckerSolver::plan`](hooi::TuckerSolver::plan)
//! runs the symbolic TTMc analysis exactly once and owns the thread pool
//! plus the scratch workspace; every `solve` after that reuses all of it —
//! at any rank, seed or TRSVD backend.  Failures are [`TuckerError`](hooi::TuckerError)
//! values, never panics.
//!
//! ```
//! use tucker_repro::prelude::*;
//!
//! # fn main() -> Result<(), TuckerError> {
//! // A small random sparse tensor, planned once.  `num_threads` sizes the
//! // session's persistent worker pool (0 = all hardware threads; workers
//! // spawn once here and serve every solve); the same code path runs
//! // fully sequentially with `num_threads(1)`.
//! let tensor = random_tensor(&[60, 50, 40], 3_000, 7);
//! let mut solver = TuckerSolver::plan(&tensor, PlanOptions::new().num_threads(2))?;
//!
//! // Solve at two rank configurations without re-planning: the second
//! // solve pays zero symbolic cost.
//! let coarse = solver.solve(&TuckerConfig::new(vec![4, 4, 4]).max_iterations(5))?;
//! let fine = solver.solve(&TuckerConfig::new(vec![8, 6, 4]).max_iterations(5))?;
//! assert_eq!(coarse.core.dims(), &[4, 4, 4]);
//! assert_eq!(fine.timings.symbolic, std::time::Duration::ZERO);
//! assert!(fine.final_fit() > 0.0);
//!
//! // One-shot convenience wrapper (plans, solves, discards the plan).
//! let one_shot = tucker_hooi(&tensor, &TuckerConfig::new(vec![4, 4, 4]))?;
//! assert_eq!(one_shot.core.dims(), &[4, 4, 4]);
//! # Ok(())
//! # }
//! ```

pub use datagen;
pub use distsim;
pub use hooi;
pub use linalg;
pub use partition;
pub use service;
pub use sptensor;

/// Convenience re-exports covering the common workflow: generate or load a
/// sparse tensor, configure and run HOOI, inspect the result, and simulate
/// a distributed run.
pub mod prelude {
    pub use datagen::{lowrank_tensor, random_tensor, DatasetProfile, LowRankSpec, ProfileName};
    pub use distsim::{
        distributed_hooi, execute_hooi, execute_hooi_chaos, loopback_tcp_available,
        simulate_iteration, ChaosRun, CommBackend, CommCounters, CommDeadline, CommError,
        Communicator, DistributedRun, DistributedSetup, ExecOptions, FailureSource, FaultAction,
        FaultOp, FaultPlan, FaultProbe, FaultTrigger, Grain, MachineModel, PartitionMethod,
        RankFailure, SimConfig,
    };
    pub use hooi::{
        tucker_hooi, DeadlineObserver, DimTree, IndexLayout, Initialization, IterationControl,
        IterationObserver, IterationReport, KernelIsa, PlanOptions, TrsvdBackend, TtmcCosts,
        TtmcStrategy, TuckerConfig, TuckerDecomposition, TuckerError, TuckerSession, TuckerSolver,
    };
    pub use linalg::Matrix;
    pub use partition::{fine_grain_hypergraph, hypergraph::Hypergraph};
    pub use service::{DecompositionService, Request, Response, ServiceOptions, ServiceStats};
    pub use sptensor::{
        io::read_csf_tns_file, io::read_tns_file, io::read_tns_file_streamed, io::write_tns_file,
        io::write_tns_file_with_header, io::DuplicatePolicy, io::StreamOptions, io::StreamStats,
        CsfTensor, DenseTensor, SparseTensor,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_workflow_compiles_and_runs() {
        let tensor = random_tensor(&[20, 20, 20], 500, 1);
        let config = TuckerConfig::new(vec![2, 2, 2]).max_iterations(2);
        let d = tucker_hooi(&tensor, &config).unwrap();
        assert_eq!(d.factors.len(), 3);
    }

    #[test]
    fn prelude_session_workflow_compiles_and_runs() {
        let tensor = random_tensor(&[20, 20, 20], 500, 1);
        let mut solver = TuckerSolver::plan(&tensor, PlanOptions::new().num_threads(1)).unwrap();
        let results = solver
            .solve_many(&[
                TuckerConfig::new(vec![2, 2, 2]).max_iterations(2),
                TuckerConfig::new(vec![3, 2, 2]).max_iterations(2),
            ])
            .unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[1].timings.symbolic, std::time::Duration::ZERO);
    }
}
