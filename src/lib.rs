//! HyperTensor-RS — a Rust reproduction of "High Performance Parallel
//! Algorithms for the Tucker Decomposition of Sparse Tensors"
//! (Kaya & Uçar, ICPP 2016).
//!
//! This root crate re-exports the workspace's public API so that the
//! examples and integration tests can use one import path.  See the
//! individual crates for the actual implementations:
//!
//! * [`hooi`] — the shared-memory parallel HOOI solver (symbolic TTMc,
//!   nonzero-based TTMc, matrix-free TRSVD, MET baseline),
//! * [`distsim`] — the distributed-memory simulator (coarse/fine grain,
//!   statistics and cost model),
//! * [`partition`] — hypergraph models and partitioners,
//! * [`sptensor`], [`linalg`], [`datagen`] — the substrates.
//!
//! # Quickstart
//!
//! ```
//! use tucker_repro::prelude::*;
//!
//! // A small random sparse tensor and a rank-(4,4,4) Tucker decomposition.
//! // `num_threads` sizes the scoped thread pool every parallel kernel of
//! // the solver runs in (0 = all hardware threads); the same code path
//! // runs fully sequentially with `num_threads(1)`.
//! let tensor = random_tensor(&[60, 50, 40], 3_000, 7);
//! let config = TuckerConfig::new(vec![4, 4, 4])
//!     .max_iterations(5)
//!     .num_threads(2);
//! let decomposition = tucker_hooi(&tensor, &config);
//! assert_eq!(decomposition.core.dims(), &[4, 4, 4]);
//! assert!(decomposition.final_fit() > 0.0);
//! ```

pub use datagen;
pub use distsim;
pub use hooi;
pub use linalg;
pub use partition;
pub use sptensor;

/// Convenience re-exports covering the common workflow: generate or load a
/// sparse tensor, configure and run HOOI, inspect the result, and simulate
/// a distributed run.
pub mod prelude {
    pub use datagen::{lowrank_tensor, random_tensor, DatasetProfile, LowRankSpec, ProfileName};
    pub use distsim::{
        simulate_iteration, DistributedSetup, Grain, MachineModel, PartitionMethod, SimConfig,
    };
    pub use hooi::{tucker_hooi, Initialization, TrsvdBackend, TuckerConfig, TuckerDecomposition};
    pub use linalg::Matrix;
    pub use partition::{fine_grain_hypergraph, hypergraph::Hypergraph};
    pub use sptensor::{io::read_tns_file, io::write_tns_file, DenseTensor, SparseTensor};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_workflow_compiles_and_runs() {
        let tensor = random_tensor(&[20, 20, 20], 500, 1);
        let config = TuckerConfig::new(vec![2, 2, 2]).max_iterations(2);
        let d = tucker_hooi(&tensor, &config);
        assert_eq!(d.factors.len(), 3);
    }
}
