//! DimensionTree vs PerMode: the `ttmc-strategy` CI gate.
//!
//! The dimension-tree TTMc reassociates the per-mode accumulation, so its
//! contract with the baseline is a *tight tolerance* (1e-10 relative) on
//! the raw TTMc results and the end-to-end fits — plus an *exact* assertion
//! on the deterministic flop counters: for order ≥ 4 the tree performs
//! strictly fewer floating-point operations per iteration than the
//! per-mode sweep.  Everything here is structure-and-arithmetic only (no
//! wall-clock measurements), so the job cannot flake on a loaded runner.

use proptest::prelude::*;
use tucker_repro::hooi::symbolic::SymbolicTtmc;
use tucker_repro::hooi::ttmc::ttmc_mode;
use tucker_repro::hooi::{per_mode_costs, DimTree};
use tucker_repro::prelude::*;

fn factors_for(tensor: &SparseTensor, ranks: &[usize], seed: u64) -> Vec<Matrix> {
    tensor
        .dims()
        .iter()
        .zip(ranks.iter())
        .enumerate()
        .map(|(m, (&d, &r))| Matrix::random(d, r, seed + m as u64))
        .collect()
}

/// Asserts the tree's compact TTMc of every mode matches the per-mode
/// baseline within 1e-10 relative Frobenius distance.
fn assert_tree_matches_per_mode(tensor: &SparseTensor, ranks: &[usize], seed: u64) {
    let factors = factors_for(tensor, ranks, seed);
    let sym = SymbolicTtmc::build(tensor);
    let tree = DimTree::build(tensor);
    let tree_results = tree.ttmc_all_modes(tensor, &sym, &factors);
    for mode in 0..tensor.order() {
        let baseline = ttmc_mode(tensor, sym.mode(mode), &factors, mode);
        assert_eq!(baseline.shape(), tree_results[mode].shape());
        let dist = baseline.frobenius_distance(&tree_results[mode]);
        let scale = baseline.frobenius_norm().max(1.0);
        assert!(
            dist <= 1e-10 * scale,
            "mode {mode}: tree TTMc diverged by {dist} (scale {scale})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn tree_matches_per_mode_order3(
        args in (5usize..14, 5usize..14, 5usize..14, 30usize..250, 0u64..1000,
                 1usize..5, 1usize..5, 1usize..5),
    ) {
        let (d1, d2, d3, nnz, seed, r1, r2, r3) = args;
        let tensor = random_tensor(&[d1, d2, d3], nnz, seed);
        assert_tree_matches_per_mode(&tensor, &[r1, r2, r3], seed ^ 0x51);
    }

    #[test]
    fn tree_matches_per_mode_order4(
        args in (4usize..10, 4usize..10, 4usize..10, 4usize..10, 30usize..250,
                 0u64..1000, 1usize..5, 1usize..5),
    ) {
        let (d1, d2, d3, d4, nnz, seed, r1, r2) = args;
        let tensor = random_tensor(&[d1, d2, d3, d4], nnz, seed);
        assert_tree_matches_per_mode(&tensor, &[r1, r2, r1, r2], seed ^ 0x52);
    }

    #[test]
    fn tree_matches_per_mode_order5(
        args in (3usize..8, 3usize..8, 30usize..200, 0u64..1000,
                 1usize..4, 1usize..4, 1usize..4),
    ) {
        let (d1, d2, nnz, seed, r1, r2, r3) = args;
        let tensor = random_tensor(&[d1, d2, d1 + 1, d2 + 1, d1], nnz, seed);
        assert_tree_matches_per_mode(&tensor, &[r1, r2, r3, r1, r2], seed ^ 0x53);
    }

    #[test]
    fn tree_flops_strictly_below_per_mode_for_random_order4(
        args in (4usize..10, 50usize..300, 0u64..1000, 2usize..6),
    ) {
        let (d, nnz, seed, r) = args;
        let tensor = random_tensor(&[d, d + 1, d + 2, d + 3], nnz, seed);
        let sym = SymbolicTtmc::build(&tensor);
        let tree = DimTree::build(&tensor);
        let ranks = vec![r; 4];
        prop_assert!(
            tree.costs(&ranks).flops < per_mode_costs(&sym, tensor.nnz(), &ranks).flops
        );
    }

    // The weighted span boundaries the flop-weighted scheduler cuts from a
    // cost vector partition the index range exactly once — every index in
    // exactly one span, spans non-empty and ascending, never more spans
    // than requested — regardless of how skewed the costs are.
    #[test]
    fn weighted_spans_partition_exactly_once_under_any_skew(
        args in (0usize..200, 0u64..u64::MAX, 1usize..64, 0usize..200, 0u64..u64::MAX / 4),
    ) {
        let (len, seed, max_spans, hot, hot_cost) = args;
        // Pseudo-random cost vector expanded from the drawn seed, with one
        // dominating index planted anywhere — cost skews far beyond what
        // any real update-list distribution produces.
        let mut costs: Vec<u64> = (0..len)
            .map(|i| (seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)) % 1_000_000)
            .collect();
        if !costs.is_empty() {
            let at = hot % costs.len();
            costs[at] = hot_cost;
        }
        let bounds = rayon::weighted_span_boundaries(&costs, max_spans);
        prop_assert_eq!(bounds[0], 0);
        prop_assert_eq!(*bounds.last().unwrap(), costs.len());
        prop_assert!(bounds.windows(2).all(|w| w[0] < w[1]) || costs.is_empty());
        prop_assert!(bounds.len() - 1 <= max_spans.min(costs.len()).max(1));
    }
}

/// End-to-end: a dimension-tree solve reproduces the per-mode solve's fit
/// trajectory within 1e-10 relative on every generated profile, at every
/// thread count, and repeated tree solves at one width are bit-identical.
/// (Across *different* widths only the tolerance holds: the TRSVD's
/// parallel reductions are deterministic per pool width, not across
/// widths — the same caveat the executor's bit-identity contract carries.)
#[test]
fn solver_fits_agree_across_strategies_and_threads() {
    for name in ProfileName::all() {
        let profile = DatasetProfile::new(name);
        let tensor = profile.generate(2_500, 42);
        let ranks = profile.paper_ranks().to_vec();
        let config = TuckerConfig::new(ranks).max_iterations(2).seed(9);

        let mut per_mode_solver = TuckerSolver::plan(
            &tensor,
            PlanOptions::new()
                .num_threads(1)
                .ttmc_strategy(TtmcStrategy::PerMode),
        )
        .unwrap();
        let baseline = per_mode_solver.solve(&config).unwrap();

        for threads in [1usize, 2, 4] {
            let mut tree_solver = TuckerSolver::plan(
                &tensor,
                PlanOptions::new()
                    .num_threads(threads)
                    .ttmc_strategy(TtmcStrategy::DimensionTree),
            )
            .unwrap();
            assert_eq!(tree_solver.ttmc_strategy(), TtmcStrategy::DimensionTree);
            let tree = tree_solver.solve(&config).unwrap();
            assert_eq!(tree.fits.len(), baseline.fits.len(), "{name:?}");
            for (a, b) in tree.fits.iter().zip(baseline.fits.iter()) {
                assert!(
                    (a - b).abs() <= 1e-10 * b.abs().max(1e-300),
                    "{name:?} @ {threads} threads: fit {a} vs per-mode {b}"
                );
            }
            // Plan reuse at a fixed width replays the exact same bits.
            let again = tree_solver.solve(&config).unwrap();
            assert_eq!(tree.fits, again.fits, "{name:?} @ {threads} threads");
            for (u, v) in tree.factors.iter().zip(again.factors.iter()) {
                let ub: Vec<u64> = u.as_slice().iter().map(|x| x.to_bits()).collect();
                let vb: Vec<u64> = v.as_slice().iter().map(|x| x.to_bits()).collect();
                assert_eq!(ub, vb, "{name:?} @ {threads} threads: repeat diverged");
            }
        }
    }
}

/// The tree TTMc itself (no TRSVD) is bit-identical across pool widths:
/// every node row is accumulated sequentially in a fixed member order, so
/// the worker count only changes who computes a row, never its bits.
#[test]
fn tree_ttmc_is_bit_identical_across_thread_counts() {
    let profile = DatasetProfile::new(ProfileName::Delicious);
    let tensor = profile.generate(4_000, 11);
    let ranks = [4, 3, 2, 3];
    let factors: Vec<Matrix> = tensor
        .dims()
        .iter()
        .zip(ranks.iter())
        .enumerate()
        .map(|(m, (&d, &r))| Matrix::random(d, r, 77 + m as u64))
        .collect();
    let sym = tucker_repro::hooi::symbolic::SymbolicTtmc::build(&tensor);
    let tree = DimTree::build(&tensor);
    let mut reference: Option<Vec<Vec<u64>>> = None;
    for threads in [1usize, 2, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let results = pool.install(|| tree.ttmc_all_modes(&tensor, &sym, &factors));
        let bits: Vec<Vec<u64>> = results
            .iter()
            .map(|m| m.as_slice().iter().map(|x| x.to_bits()).collect())
            .collect();
        match &reference {
            None => reference = Some(bits),
            Some(r) => assert_eq!(r, &bits, "{threads} threads diverged"),
        }
    }
}

/// The flop counters on the order-4 profiles (the paper's Delicious and
/// Flickr shapes): the tree must do strictly less arithmetic, exactly as
/// counted, and the bound must hold at the paper's ranks.
#[test]
fn tree_flops_strictly_below_per_mode_on_order4_profiles() {
    for name in [ProfileName::Delicious, ProfileName::Flickr] {
        let profile = DatasetProfile::new(name);
        let tensor = profile.generate(8_000, 7);
        assert_eq!(tensor.order(), 4);
        let ranks = profile.paper_ranks().to_vec();
        let sym = SymbolicTtmc::build(&tensor);
        let tree = DimTree::build(&tensor);
        let tree_costs = tree.costs(&ranks);
        let baseline = per_mode_costs(&sym, tensor.nnz(), &ranks);
        assert!(
            tree_costs.flops < baseline.flops,
            "{name:?}: tree flops {} not strictly below per-mode {}",
            tree_costs.flops,
            baseline.flops
        );
        // The counters are pure functions of structure and ranks.
        assert_eq!(tree_costs, tree.costs(&ranks));
        assert_eq!(baseline, per_mode_costs(&sym, tensor.nnz(), &ranks));
    }
}

/// Batch (`solve_many`) and observer paths run the tree strategy too: one
/// plan, several rank configurations, each matching its per-mode twin.
#[test]
fn tree_session_batches_match_per_mode_within_tolerance() {
    let profile = DatasetProfile::new(ProfileName::Netflix);
    let tensor = profile.generate(5_000, 3);
    let configs = vec![
        TuckerConfig::new(vec![4, 4, 4]).max_iterations(2).seed(1),
        TuckerConfig::new(vec![6, 3, 2]).max_iterations(2).seed(2),
    ];
    let mut tree_solver = TuckerSolver::plan(&tensor, PlanOptions::new().num_threads(2)).unwrap();
    let mut per_mode_solver = TuckerSolver::plan(
        &tensor,
        PlanOptions::new()
            .num_threads(2)
            .ttmc_strategy(TtmcStrategy::PerMode),
    )
    .unwrap();
    let tree_results = tree_solver.solve_many(&configs).unwrap();
    let base_results = per_mode_solver.solve_many(&configs).unwrap();
    for (t, b) in tree_results.iter().zip(base_results.iter()) {
        assert_eq!(t.ranks(), b.ranks());
        for (a, e) in t.fits.iter().zip(b.fits.iter()) {
            assert!((a - e).abs() <= 1e-10 * e.abs().max(1e-300));
        }
    }
}

/// The strategy knob is honoured end to end: per-mode sessions report it,
/// the default (`Auto`) resolves to the strategy the flop model picks —
/// the tree, on a colliding random tensor — and the one-shot entry follows
/// the config.
#[test]
fn strategy_knob_is_reported_and_defaulted() {
    let tensor = random_tensor(&[10, 10, 10], 300, 5);
    let default_solver = TuckerSolver::plan(&tensor, PlanOptions::new().num_threads(1)).unwrap();
    assert_eq!(default_solver.ttmc_strategy(), TtmcStrategy::DimensionTree);
    assert!(default_solver.dimtree().is_some());
    assert_eq!(PlanOptions::new().ttmc_strategy, TtmcStrategy::Auto);
    assert_eq!(TtmcStrategy::default(), TtmcStrategy::Auto);
    let pinned = TuckerSolver::plan(
        &tensor,
        PlanOptions::new()
            .num_threads(1)
            .ttmc_strategy(TtmcStrategy::PerMode),
    )
    .unwrap();
    assert_eq!(pinned.ttmc_strategy(), TtmcStrategy::PerMode);
    assert!(pinned.dimtree().is_none());

    let config = TuckerConfig::new(vec![2, 2, 2]).max_iterations(2).seed(4);
    let tree_run = tucker_hooi(&tensor, &config).unwrap();
    let per_mode_run = tucker_hooi(
        &tensor,
        &config.clone().ttmc_strategy(TtmcStrategy::PerMode),
    )
    .unwrap();
    for (a, b) in tree_run.fits.iter().zip(per_mode_run.fits.iter()) {
        assert!((a - b).abs() <= 1e-10 * b.abs().max(1e-300));
    }
}

/// `Auto` resolves to whichever strategy the plan-time flop model prices
/// cheaper, on order-3 and order-4 profiles alike.  The expected winner is
/// recomputed here from the same public counters the resolver uses (at its
/// fixed rank hint of `min(dim, 8)` per mode, ties to per-mode).
#[test]
fn auto_selects_lower_modeled_flops_strategy_per_profile() {
    for name in ProfileName::all() {
        let profile = DatasetProfile::new(name);
        let tensor = profile.generate(4_000, 23);
        let sym = SymbolicTtmc::build(&tensor);
        let tree = DimTree::build(&tensor);
        let hint: Vec<usize> = tensor.dims().iter().map(|&d| d.min(8)).collect();
        let expected = if tree.costs(&hint).flops < per_mode_costs(&sym, tensor.nnz(), &hint).flops
        {
            TtmcStrategy::DimensionTree
        } else {
            TtmcStrategy::PerMode
        };
        let solver = TuckerSolver::plan(
            &tensor,
            PlanOptions::new()
                .num_threads(1)
                .ttmc_strategy(TtmcStrategy::Auto),
        )
        .unwrap();
        assert_eq!(
            solver.ttmc_strategy(),
            expected,
            "{name:?}: auto did not pick the cheaper strategy"
        );
        assert_eq!(
            solver.dimtree().is_some(),
            expected == TtmcStrategy::DimensionTree,
            "{name:?}: plan artifacts disagree with the resolved strategy"
        );
    }
}

/// On a collision-free tensor (diagonal: every nonzero projects to a
/// distinct index on every mode set) flop sharing cannot pay — the tree
/// contracts each nonzero once per level while the per-mode sweep touches
/// it once per mode with a cheaper kernel — so `Auto` must resolve to the
/// per-mode strategy, and the solve must still be correct.
#[test]
fn auto_resolves_to_per_mode_when_sharing_cannot_pay() {
    let n = 40usize;
    let entries: Vec<(Vec<usize>, f64)> = (0..n)
        .map(|i| (vec![i, i, i], 1.0 + i as f64 * 0.5))
        .collect();
    let tensor = SparseTensor::from_entries(vec![n, n, n], &entries);
    let mut solver = TuckerSolver::plan(
        &tensor,
        PlanOptions::new()
            .num_threads(1)
            .ttmc_strategy(TtmcStrategy::Auto),
    )
    .unwrap();
    assert_eq!(solver.ttmc_strategy(), TtmcStrategy::PerMode);
    assert!(solver.dimtree().is_none());
    // The resolved plan solves like an explicitly per-mode one.
    let config = TuckerConfig::new(vec![3, 3, 3]).max_iterations(2).seed(8);
    let auto_run = solver.solve(&config).unwrap();
    let pinned_run = tucker_hooi(
        &tensor,
        &config.clone().ttmc_strategy(TtmcStrategy::PerMode),
    )
    .unwrap();
    assert_eq!(auto_run.fits, pinned_run.fits);
}

/// The per-mode TTMc with flop-weighted row chunking is bit-identical
/// across pool widths: each row is computed whole by exactly one worker in
/// a fixed entry order, so weighting only moves span boundaries — never
/// the arithmetic inside a row.
#[test]
fn per_mode_ttmc_is_bit_identical_across_thread_counts() {
    let profile = DatasetProfile::new(ProfileName::Delicious);
    let tensor = profile.generate(4_000, 19);
    let ranks = [3, 4, 2, 3];
    let factors = factors_for(&tensor, &ranks, 55);
    let sym = SymbolicTtmc::build(&tensor);
    let mut reference: Option<Vec<Vec<u64>>> = None;
    for threads in [1usize, 2, 4] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        let results: Vec<Matrix> = pool.install(|| {
            (0..tensor.order())
                .map(|mode| ttmc_mode(&tensor, sym.mode(mode), &factors, mode))
                .collect()
        });
        let bits: Vec<Vec<u64>> = results
            .iter()
            .map(|m| m.as_slice().iter().map(|x| x.to_bits()).collect())
            .collect();
        match &reference {
            None => reference = Some(bits),
            Some(r) => assert_eq!(r, &bits, "{threads} threads diverged"),
        }
    }
}

/// The executor contract — results bit-identical *per thread count* — holds
/// for both strategies under the flop-weighted scheduling and privatized
/// accumulation: at each of 1/2/4 threads, two independently planned solves
/// reproduce factors, core, and fits bit for bit.  (Across *different*
/// widths only the 1e-10 tolerance holds, as ever: the TRSVD's parallel
/// reductions are deterministic per pool width, not across widths — the
/// TTMc layer itself is cross-width bit-identical, see the dedicated
/// `*_ttmc_is_bit_identical_across_thread_counts` tests.)
#[test]
fn solves_are_bit_reproducible_at_each_thread_count_for_both_strategies() {
    let profile = DatasetProfile::new(ProfileName::Delicious);
    let tensor = profile.generate(3_000, 31);
    let config = TuckerConfig::new(vec![3, 3, 2, 3])
        .max_iterations(2)
        .seed(6);
    for strategy in [TtmcStrategy::PerMode, TtmcStrategy::DimensionTree] {
        let mut one_thread_fits: Option<Vec<f64>> = None;
        for threads in [1usize, 2, 4] {
            let solve_once = || {
                TuckerSolver::plan(
                    &tensor,
                    PlanOptions::new()
                        .num_threads(threads)
                        .ttmc_strategy(strategy),
                )
                .unwrap()
                .solve(&config)
                .unwrap()
            };
            let first = solve_once();
            let second = solve_once();
            assert_eq!(first.fits, second.fits, "{strategy:?} @ {threads} threads");
            assert_eq!(
                first.core.as_slice(),
                second.core.as_slice(),
                "{strategy:?} @ {threads} threads: core not reproducible"
            );
            for (u, v) in first.factors.iter().zip(second.factors.iter()) {
                let ub: Vec<u64> = u.as_slice().iter().map(|x| x.to_bits()).collect();
                let vb: Vec<u64> = v.as_slice().iter().map(|x| x.to_bits()).collect();
                assert_eq!(
                    ub, vb,
                    "{strategy:?} @ {threads} threads: factor not reproducible"
                );
            }
            match &one_thread_fits {
                None => one_thread_fits = Some(first.fits),
                Some(base) => {
                    for (a, b) in first.fits.iter().zip(base.iter()) {
                        assert!(
                            (a - b).abs() <= 1e-10 * b.abs().max(1e-300),
                            "{strategy:?} @ {threads} threads: fit {a} vs 1-thread {b}"
                        );
                    }
                }
            }
        }
    }
}
