//! Integration tests for the multi-tenant decomposition service: the
//! determinism contract (bit-identical responses across cache states and
//! submission interleavings) and the plan cache's eviction behaviour.

use std::sync::{Arc, Mutex};
use std::thread;
use tucker_repro::prelude::*;

fn tensor(seed: u64) -> Arc<SparseTensor> {
    Arc::new(random_tensor(&[16, 14, 12], 500, seed))
}

/// Footprint of a freshly planned (not yet solved) session for the test
/// tensors — the unit the cache budgets below are expressed in.
fn plan_bytes() -> usize {
    TuckerSession::plan(tensor(0), PlanOptions::new().caller_pool())
        .unwrap()
        .memory_bytes()
}

fn ingest(id: &str, seed: u64) -> Request {
    Request::Ingest {
        tensor_id: id.into(),
        tensor: tensor(seed),
    }
}

fn decompose(id: &str, seed: u64) -> Request {
    Request::Decompose {
        tensor_id: id.into(),
        ranks: vec![3, 3, 3],
        seed,
        max_iters: 3,
        deadline: None,
    }
}

fn decomposition(outcome: &Result<Response, TuckerError>) -> &TuckerDecomposition {
    match outcome.as_ref().unwrap() {
        Response::Decomposed { decomposition, .. } => decomposition,
        other => panic!("expected a decomposition, got {other:?}"),
    }
}

/// Under memory pressure the plan cache must evict in LRU order driven by
/// the *logical* request clock — the same request history always evicts
/// the same plans in the same order.
#[test]
fn eviction_order_under_pressure_is_deterministic() {
    let per_plan = plan_bytes();
    let run = || {
        let mut svc = DecompositionService::new(
            ServiceOptions::new()
                .num_threads(1)
                // Room for two same-shaped plans, never three.
                .plan_cache_bytes(2 * per_plan + per_plan / 2),
        )
        .unwrap();
        for (i, id) in ["a", "b", "c", "d"].iter().enumerate() {
            svc.submit("tenant", ingest(id, i as u64));
        }
        svc.run_until_idle();
        (svc.stats().evicted_plans.clone(), svc.cached_plan_ids())
    };
    let (evicted, cached) = run();
    // Ingest order a, b, c, d with room for two: c evicts a, d evicts b.
    assert_eq!(evicted, vec!["a".to_string(), "b".to_string()]);
    assert_eq!(cached, vec!["c".to_string(), "d".to_string()]);
    // Bit-for-bit repeatable, not an artifact of wall-clock timing.
    assert_eq!(run(), (evicted, cached));
}

/// A decomposition whose plan was evicted re-plans transparently and
/// returns exactly the bits a never-evicted service returns; predictions
/// keep working after plan eviction because models outlive plans.
#[test]
fn replan_after_eviction_is_transparent_and_bit_identical() {
    let queries = vec![vec![0, 0, 0], vec![15, 13, 11], vec![7, 3, 9]];
    // Reference: a service whose cache never feels pressure.
    let mut reference = DecompositionService::new(ServiceOptions::new().num_threads(1)).unwrap();
    reference.submit("t", ingest("a", 0));
    reference.submit("t", decompose("a", 42));
    let completions = reference.run_until_idle();
    assert_eq!(completions[1].plan_cache_hit, Some(true));
    let expected = decomposition(&completions[1].outcome).clone();

    // Pressured: room for one plan only, so ingesting `b` evicts `a`.
    let per_plan = plan_bytes();
    let mut svc = DecompositionService::new(
        ServiceOptions::new()
            .num_threads(1)
            .plan_cache_bytes(per_plan + per_plan / 2),
    )
    .unwrap();
    svc.submit("t", ingest("a", 0));
    svc.submit("t", ingest("b", 1));
    svc.submit("t", decompose("a", 42));
    let completions = svc.run_until_idle();
    // Ingesting `b` pushed `a` out (the solved session re-admitted after
    // the decomposition may push `b` out in turn; the first victim is
    // what this test arranges).
    assert_eq!(svc.stats().evicted_plans.first().unwrap(), "a");
    // The re-plan is invisible except to the cache counters...
    assert_eq!(completions[2].plan_cache_hit, Some(false));
    let replanned = decomposition(&completions[2].outcome);
    // ...and the factors are the reference bits exactly.
    assert_eq!(replanned.factors, expected.factors);
    assert_eq!(replanned.core.as_slice(), expected.core.as_slice());
    assert_eq!(replanned.fits, expected.fits);

    // Evict `a`'s plan again (ingest `b` refreshes nothing: re-ingest `b`),
    // then predict: the model lives in the registry, not the plan cache.
    svc.submit("t", ingest("b", 1));
    svc.submit(
        "t",
        Request::Predict {
            tensor_id: "a".into(),
            indices: queries.clone(),
        },
    );
    let completions = svc.run_until_idle();
    match completions[1].outcome.as_ref().unwrap() {
        Response::Predicted { values } => {
            assert_eq!(values, &expected.predict_many(&queries));
        }
        other => panic!("expected predictions, got {other:?}"),
    }
}

/// Satellite regression (fault-tolerance PR): a tenant whose requests
/// panic or expire must not be charged for work never done, and the other
/// tenants' responses must be bit-identical to a replay without the
/// poisoned load.
#[test]
fn poisoned_tenant_load_leaves_healthy_tenants_and_accounting_intact() {
    let healthy_requests = |svc: &mut DecompositionService| {
        svc.submit("healthy", ingest("h", 5));
        svc.submit("healthy", decompose("h", 77));
        svc.submit(
            "healthy",
            Request::Predict {
                tensor_id: "h".into(),
                indices: vec![vec![0, 0, 0], vec![15, 13, 11]],
            },
        );
    };

    // Reference: the healthy tenant alone.
    let mut reference = DecompositionService::new(ServiceOptions::new().num_threads(1)).unwrap();
    healthy_requests(&mut reference);
    let expected = reference.run_until_idle();
    let expected_model = decomposition(&expected[1].outcome).clone();
    let expected_charge = reference.charged_flops().get("healthy").copied().unwrap();

    // Mixed load: the poisoned tenant interleaves a panicking predict
    // (out-of-range indices), requests against its quarantined tensor, and
    // a deadline that expired in the queue.
    let mut svc = DecompositionService::new(ServiceOptions::new().num_threads(1)).unwrap();
    svc.submit("poisoned", ingest("p", 6));
    svc.submit("poisoned", decompose("p", 88));
    healthy_requests(&mut svc);
    svc.submit(
        "poisoned",
        Request::Predict {
            tensor_id: "p".into(),
            indices: vec![vec![500, 500, 500]],
        },
    );
    svc.submit("poisoned", decompose("p", 88));
    svc.submit(
        "poisoned",
        Request::Decompose {
            tensor_id: "p".into(),
            ranks: vec![3, 3, 3],
            seed: 88,
            max_iters: 3,
            deadline: Some(std::time::Duration::ZERO),
        },
    );
    let done = svc.run_until_idle();

    // The poisoned tenant's failures are answers, not outages.
    let poisoned: Vec<_> = done.iter().filter(|c| c.tenant == "poisoned").collect();
    assert!(matches!(
        poisoned[2].outcome,
        Err(TuckerError::SolvePanicked { .. })
    ));
    assert!(matches!(
        poisoned[3].outcome,
        Err(TuckerError::SolvePanicked { .. })
    ));
    // The expired-deadline request hit the quarantine gate or the deadline
    // gate — either way a typed error with zero charge.
    assert!(poisoned[4].outcome.is_err());
    for failure in &poisoned[2..] {
        assert_eq!(
            failure.charged_flops, 0,
            "failed work must not charge the fairness account"
        );
    }

    // The healthy tenant's bits are exactly the solo-replay bits.
    let healthy: Vec<_> = done.iter().filter(|c| c.tenant == "healthy").collect();
    let model = decomposition(&healthy[1].outcome);
    assert_eq!(model.factors, expected_model.factors);
    assert_eq!(model.core.as_slice(), expected_model.core.as_slice());
    assert_eq!(model.fits, expected_model.fits);
    match healthy[2].outcome.as_ref().unwrap() {
        Response::Predicted { values } => {
            assert_eq!(
                values,
                &expected_model.predict_many(&[vec![0, 0, 0], vec![15, 13, 11]])
            );
        }
        other => panic!("expected predictions, got {other:?}"),
    }
    // ...and so is its fairness account.
    assert_eq!(
        svc.charged_flops().get("healthy").copied().unwrap(),
        expected_charge,
        "healthy tenant's account moved under poisoned load"
    );
    // The poisoned tenant is charged only for the work that completed
    // (ingest + the one successful decompose), nothing for the failures.
    let charged_poisoned = svc.charged_flops().get("poisoned").copied().unwrap();
    let mut solo = DecompositionService::new(ServiceOptions::new().num_threads(1)).unwrap();
    solo.submit("poisoned", ingest("p", 6));
    solo.submit("poisoned", decompose("p", 88));
    solo.run_until_idle();
    assert_eq!(
        charged_poisoned,
        solo.charged_flops().get("poisoned").copied().unwrap(),
        "failures must add zero to the poisoned tenant's account"
    );
    assert_eq!(svc.stats().quarantined_tensors, vec!["p".to_string()]);
}

/// N tenants hammering one shared service from real threads — submissions
/// and steps interleaved however the OS schedules them — must each get
/// bit-identical decompositions to a serial, single-tenant replay of their
/// own request stream.
#[test]
fn concurrent_tenants_match_serial_bit_for_bit() {
    const TENANTS: usize = 4;
    let options = || ServiceOptions::new().num_threads(2);
    let per_tenant_requests = |t: usize| {
        let id = format!("t{t}");
        vec![
            ingest(&id, t as u64),
            decompose(&id, 10 + t as u64),
            decompose(&id, 20 + t as u64),
        ]
    };

    // Serial reference: each tenant alone on a fresh service.
    let mut reference = Vec::new();
    for t in 0..TENANTS {
        let mut svc = DecompositionService::new(options()).unwrap();
        for request in per_tenant_requests(t) {
            svc.submit(&format!("t{t}"), request);
        }
        let done = svc.run_until_idle();
        reference.push(vec![
            decomposition(&done[1].outcome).clone(),
            decomposition(&done[2].outcome).clone(),
        ]);
    }

    // Concurrent: all tenants share one service behind a mutex, submitting
    // and stepping from their own threads.
    let svc = Arc::new(Mutex::new(DecompositionService::new(options()).unwrap()));
    let done = Arc::new(Mutex::new(Vec::new()));
    thread::scope(|scope| {
        for t in 0..TENANTS {
            let svc = Arc::clone(&svc);
            let done = Arc::clone(&done);
            scope.spawn(move || {
                for request in per_tenant_requests(t) {
                    svc.lock().unwrap().submit(&format!("t{t}"), request);
                    // Interleave execution with everyone else's submissions.
                    if let Some(completed) = svc.lock().unwrap().step() {
                        done.lock().unwrap().push(completed);
                    }
                }
            });
        }
    });
    done.lock()
        .unwrap()
        .extend(svc.lock().unwrap().run_until_idle());

    let done = done.lock().unwrap();
    assert_eq!(done.len(), 3 * TENANTS);
    for t in 0..TENANTS {
        let tenant = format!("t{t}");
        let models: Vec<&TuckerDecomposition> = done
            .iter()
            .filter(|c| c.tenant == tenant && matches!(c.outcome, Ok(Response::Decomposed { .. })))
            .map(|c| decomposition(&c.outcome))
            .collect();
        assert_eq!(models.len(), 2, "tenant {tenant} lost a decomposition");
        // Per-tenant FIFO order: first completion is the seed-10+t solve.
        for (got, want) in models.iter().zip(&reference[t]) {
            assert_eq!(got.factors, want.factors, "tenant {tenant} diverged");
            assert_eq!(got.core.as_slice(), want.core.as_slice());
            assert_eq!(got.fits, want.fits);
        }
    }
}
