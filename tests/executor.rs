//! Executor/solver bit-identity and communication cross-validation.
//!
//! The distributed executor's contract is *exact* agreement with the
//! shared-memory [`TuckerSolver`] — same factors, same core, same fits, to
//! the last bit — across every grain, partitioning method, and rank count,
//! plus word-exact agreement between the communicator's measured traffic
//! and [`iteration_stats`]' predictions.  These tests are the `executor-
//! smoke` CI gate.
//!
//! The executor replays the *per-mode* TTMc accumulation order, so every
//! reference solver here is planned with [`TtmcStrategy::PerMode`]; the
//! solver's default dimension-tree fast path reassociates the arithmetic
//! and agrees only within tolerance (covered by `tests/ttmc_strategies.rs`).

use tucker_repro::distsim::{iteration_stats, Phase};
use tucker_repro::prelude::*;

use std::time::Duration;

fn bits(m: &linalg::Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

fn assert_identical(a: &TuckerDecomposition, b: &TuckerDecomposition, label: &str) {
    assert_eq!(a.fits, b.fits, "{label}: fits diverged");
    assert_eq!(a.iterations, b.iterations, "{label}: iteration counts");
    for (m, (ua, ub)) in a.factors.iter().zip(b.factors.iter()).enumerate() {
        assert_eq!(bits(ua), bits(ub), "{label}: factor {m} not bit-identical");
    }
    assert_eq!(
        a.core
            .as_slice()
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<_>>(),
        b.core
            .as_slice()
            .iter()
            .map(|x| x.to_bits())
            .collect::<Vec<_>>(),
        "{label}: core not bit-identical"
    );
}

/// The property the ISSUE names: channel-backend `distributed_hooi`
/// matches `TuckerSolver::solve` exactly across both grains, all three
/// partitioning methods, and 1/2/4 ranks.
#[test]
fn executor_matches_solver_exactly_across_the_grid() {
    let tensor = random_tensor(&[22, 18, 14], 800, 31);
    let config = TuckerConfig::new(vec![3, 2, 3]).max_iterations(3).seed(7);
    let mut solver = TuckerSolver::plan(
        &tensor,
        PlanOptions::new()
            .num_threads(1)
            .ttmc_strategy(TtmcStrategy::PerMode),
    )
    .unwrap();
    let reference = solver.solve(&config).unwrap();
    for grain in [Grain::Fine, Grain::Coarse] {
        for method in [
            PartitionMethod::Random,
            PartitionMethod::Block,
            PartitionMethod::Hypergraph,
        ] {
            for num_ranks in [1usize, 2, 4] {
                let sim = SimConfig::new(num_ranks, grain, method, vec![3, 2, 3]);
                let setup = DistributedSetup::build(&tensor, &sim);
                let dist = distributed_hooi(&tensor, &setup, &config).unwrap();
                assert_identical(
                    &dist,
                    &reference,
                    &format!("{grain:?}/{method:?}/{num_ranks} ranks"),
                );
            }
        }
    }
}

/// Randomized-tensor variant of the same property: many tensors, one
/// configuration each, so the property does not depend on one fixed
/// sparsity pattern.
#[test]
fn executor_matches_solver_on_random_tensors() {
    for seed in 0..6u64 {
        let dims = [
            10 + (seed as usize * 7) % 15,
            8 + (seed as usize * 5) % 12,
            6 + (seed as usize * 3) % 9,
        ];
        let nnz = 200 + (seed as usize * 131) % 400;
        let tensor = random_tensor(&dims, nnz, seed);
        let config = TuckerConfig::new(vec![2, 2, 2])
            .max_iterations(2)
            .seed(seed ^ 0xabcd);
        let mut solver = TuckerSolver::plan(
            &tensor,
            PlanOptions::new()
                .num_threads(1)
                .ttmc_strategy(TtmcStrategy::PerMode),
        )
        .unwrap();
        let reference = solver.solve(&config).unwrap();
        let grain = if seed % 2 == 0 {
            Grain::Fine
        } else {
            Grain::Coarse
        };
        let sim = SimConfig::new(3, grain, PartitionMethod::Hypergraph, vec![2, 2, 2]);
        let setup = DistributedSetup::build(&tensor, &sim);
        let dist = distributed_hooi(&tensor, &setup, &config).unwrap();
        assert_identical(&dist, &reference, &format!("seed {seed} ({grain:?})"));
    }
}

/// Predicted-vs-measured comm volume on one coarse-grain and one
/// fine-grain configuration — the ISSUE's acceptance criterion.
#[test]
fn measured_comm_volume_matches_iteration_stats() {
    let tensor = random_tensor(&[30, 24, 18], 1200, 5);
    let config = TuckerConfig::new(vec![3, 3, 3]).max_iterations(3).seed(2);
    for (grain, method, p) in [
        (Grain::Fine, PartitionMethod::Hypergraph, 4),
        (Grain::Coarse, PartitionMethod::Block, 3),
    ] {
        let sim = SimConfig::new(p, grain, method, vec![3, 3, 3]);
        let setup = DistributedSetup::build(&tensor, &sim);
        let run = execute_hooi(&tensor, &setup, &config, &ExecOptions::default()).unwrap();
        let stats = iteration_stats(&tensor, &setup, 20);
        let iters = run.decomposition.iterations as u64;
        assert!(iters > 0);
        let expand = stats.expand_words_per_rank();
        let fold = stats.fold_words_per_rank();
        for r in 0..p {
            assert_eq!(
                run.comm[r].phase(Phase::Expand).floats_transferred(),
                iters * expand[r],
                "{grain:?}/{method:?} rank {r}: expand words"
            );
            assert_eq!(
                run.comm[r].phase(Phase::Fold).floats_transferred(),
                iters * fold[r],
                "{grain:?}/{method:?} rank {r}: fold words"
            );
        }
        if grain == Grain::Coarse {
            assert!(
                run.comm
                    .iter()
                    .all(|c| c.phase(Phase::Fold).messages_sent == 0),
                "coarse grain never splits a row, so nothing folds"
            );
        }
        // The allreduced cluster totals agree with the joined counters.
        let sent: u64 = run
            .comm
            .iter()
            .map(|c| c.phase(Phase::Expand).floats_sent)
            .sum();
        assert_eq!(run.cluster_expand_floats, sent as f64);
    }
}

/// The loopback-TCP smoke test of the `executor-smoke` CI step: the socket
/// backend must agree with the channel backend bit for bit, or skip
/// gracefully where the sandbox forbids sockets.
#[test]
fn tcp_smoke_matches_channel_or_skips() {
    if !loopback_tcp_available() {
        eprintln!("skipping TCP smoke test: loopback sockets unavailable in this environment");
        return;
    }
    let tensor = random_tensor(&[20, 16, 12], 600, 9);
    let config = TuckerConfig::new(vec![2, 3, 2]).max_iterations(2).seed(4);
    let sim = SimConfig::new(4, Grain::Fine, PartitionMethod::Hypergraph, vec![2, 3, 2]);
    let setup = DistributedSetup::build(&tensor, &sim);
    let chan = execute_hooi(&tensor, &setup, &config, &ExecOptions::default()).unwrap();
    let tcp = execute_hooi(
        &tensor,
        &setup,
        &config,
        &ExecOptions::new().backend(CommBackend::Tcp),
    )
    .unwrap();
    assert_identical(&tcp.decomposition, &chan.decomposition, "tcp vs channel");
    for (r, (a, b)) in tcp.comm.iter().zip(chan.comm.iter()).enumerate() {
        assert_eq!(a, b, "rank {r}: backends moved different traffic");
    }
    let mut solver = TuckerSolver::plan(
        &tensor,
        PlanOptions::new()
            .num_threads(1)
            .ttmc_strategy(TtmcStrategy::PerMode),
    )
    .unwrap();
    let reference = solver.solve(&config).unwrap();
    assert_identical(&tcp.decomposition, &reference, "tcp vs solver");
}

/// The failure contract next to the bit-identity contract: a mid-solve
/// link cut turns into `TuckerError::RankFailed` on every rank (never a
/// panic, never a hang), while the same configuration without the fault
/// still matches the shared-memory solver exactly.  The full chaos matrix
/// lives in `tests/faults.rs`; this is the executor-smoke view of it.
#[test]
fn executor_failure_is_a_typed_error_not_a_hang() {
    let tensor = random_tensor(&[18, 14, 10], 500, 13);
    let config = TuckerConfig::new(vec![2, 2, 2]).max_iterations(3).seed(6);
    let sim = SimConfig::new(3, Grain::Fine, PartitionMethod::Block, vec![2, 2, 2]);
    let setup = DistributedSetup::build(&tensor, &sim);
    let opts =
        ExecOptions::new().deadline(CommDeadline::with_recv_timeout(Duration::from_millis(400)));
    let plan = FaultPlan::one(FaultTrigger {
        rank: 2,
        peer: 0,
        op: FaultOp::Recv,
        nth: 1,
        action: FaultAction::Disconnect,
    });
    let run = execute_hooi_chaos(&tensor, &setup, &config, &opts, &plan).unwrap();
    assert!(run.faults_fired >= 1, "the injected fault must fire");
    match &run.outcome {
        Err(TuckerError::RankFailed { phase, source, .. }) => {
            assert!(!phase.is_empty(), "failure must name its phase");
            assert!(!source.is_empty(), "failure must carry its cause");
        }
        other => panic!("expected RankFailed, got {other:?}"),
    }
    for (r, e) in run.rank_errors.iter().enumerate() {
        assert!(
            matches!(e, Some(TuckerError::RankFailed { .. })),
            "rank {r} must fail typed, got {e:?}"
        );
    }
    // The identical configuration without the fault still holds the
    // bit-identity contract.
    let clean = execute_hooi(&tensor, &setup, &config, &opts).unwrap();
    let mut solver = TuckerSolver::plan(
        &tensor,
        PlanOptions::new()
            .num_threads(1)
            .ttmc_strategy(TtmcStrategy::PerMode),
    )
    .unwrap();
    let reference = solver.solve(&config).unwrap();
    assert_identical(&clean.decomposition, &reference, "post-chaos clean run");
}

/// `solve_many`-style reuse on the executor side: running the same
/// configuration twice, and a different rank configuration in between,
/// stays deterministic.
#[test]
fn executor_runs_are_reproducible() {
    let tensor = random_tensor(&[18, 18, 18], 700, 12);
    let sim = SimConfig::new(3, Grain::Fine, PartitionMethod::Random, vec![3, 3, 3]);
    let setup = DistributedSetup::build(&tensor, &sim);
    let config_a = TuckerConfig::new(vec![3, 3, 3]).max_iterations(2).seed(1);
    let config_b = TuckerConfig::new(vec![2, 2, 2]).max_iterations(2).seed(1);
    let first = distributed_hooi(&tensor, &setup, &config_a).unwrap();
    let other = distributed_hooi(&tensor, &setup, &config_b).unwrap();
    let second = distributed_hooi(&tensor, &setup, &config_a).unwrap();
    assert_identical(&first, &second, "repeat run");
    assert_eq!(other.core.dims(), &[2, 2, 2]);
}
