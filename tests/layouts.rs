//! Index-layout contracts: the CSF fiber walk and the flat gathers are the
//! **same IEEE accumulation**, not merely close.
//!
//! The CSF hierarchies are built from the symbolic update-list permutation,
//! so their leaf order equals the flat paths' accumulation order; the
//! per-nonzero kernel bodies are literally shared between the layouts.
//! That makes the contract here exact bit identity — on random tensors of
//! orders 3 through 5, at 1/2/4 threads, for the raw TTMc and for full
//! solves — which is what lets a plan pick its layout purely on memory
//! footprint without changing a single output bit.

use proptest::prelude::*;
use tucker_repro::hooi::symbolic::SymbolicTtmc;
use tucker_repro::hooi::ttmc::ttmc_mode;
use tucker_repro::prelude::*;

fn factors_for(tensor: &SparseTensor, ranks: &[usize], seed: u64) -> Vec<Matrix> {
    tensor
        .dims()
        .iter()
        .zip(ranks.iter())
        .enumerate()
        .map(|(m, (&d, &r))| Matrix::random(d, r, seed + m as u64))
        .collect()
}

fn ttmc_bits(
    tensor: &SparseTensor,
    sym: &SymbolicTtmc,
    factors: &[Matrix],
    threads: usize,
) -> Vec<Vec<u64>> {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap();
    pool.install(|| {
        (0..tensor.order())
            .map(|mode| {
                ttmc_mode(tensor, sym.mode(mode), factors, mode)
                    .as_slice()
                    .iter()
                    .map(|x| x.to_bits())
                    .collect()
            })
            .collect()
    })
}

/// Asserts the TTMc of every mode is bit-identical across the COO gather,
/// the flat mode-sorted stream, and the CSF fiber walk, at 1/2/4 threads.
fn assert_layouts_bit_identical(tensor: &SparseTensor, ranks: &[usize], seed: u64) {
    let factors = factors_for(tensor, ranks, seed);
    let coo = SymbolicTtmc::build_without_layout(tensor);
    let sorted = SymbolicTtmc::build(tensor); // attaches mode-sorted layouts
    let mut csf = SymbolicTtmc::build_without_layout(tensor);
    csf.attach_csf_layouts(tensor);
    for mode in 0..tensor.order() {
        assert!(csf.mode(mode).csf().is_some());
        assert!(sorted.mode(mode).layout().is_some());
    }
    for threads in [1usize, 2, 4] {
        let coo_bits = ttmc_bits(tensor, &coo, &factors, threads);
        let sorted_bits = ttmc_bits(tensor, &sorted, &factors, threads);
        let csf_bits = ttmc_bits(tensor, &csf, &factors, threads);
        assert_eq!(
            coo_bits, sorted_bits,
            "mode-sorted diverged from COO at {threads} threads"
        );
        assert_eq!(
            coo_bits, csf_bits,
            "CSF diverged from COO at {threads} threads"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn csf_ttmc_bit_identical_order3(
        args in (5usize..14, 5usize..14, 5usize..14, 30usize..250, 0u64..1000,
                 1usize..5, 1usize..5, 1usize..5),
    ) {
        let (d1, d2, d3, nnz, seed, r1, r2, r3) = args;
        let tensor = random_tensor(&[d1, d2, d3], nnz, seed);
        assert_layouts_bit_identical(&tensor, &[r1, r2, r3], seed ^ 0x61);
    }

    #[test]
    fn csf_ttmc_bit_identical_order4(
        args in (4usize..10, 4usize..10, 4usize..10, 4usize..10, 30usize..250,
                 0u64..1000, 1usize..5, 1usize..5),
    ) {
        let (d1, d2, d3, d4, nnz, seed, r1, r2) = args;
        let tensor = random_tensor(&[d1, d2, d3, d4], nnz, seed);
        assert_layouts_bit_identical(&tensor, &[r1, r2, r1, r2], seed ^ 0x62);
    }

    #[test]
    fn csf_ttmc_bit_identical_order5(
        args in (3usize..8, 3usize..8, 30usize..200, 0u64..1000,
                 1usize..4, 1usize..4, 1usize..4),
    ) {
        let (d1, d2, nnz, seed, r1, r2, r3) = args;
        let tensor = random_tensor(&[d1, d2, d1 + 1, d2 + 1, d1], nnz, seed);
        assert_layouts_bit_identical(&tensor, &[r1, r2, r3, r1, r2], seed ^ 0x63);
    }

    // The Auto resolution is a pure function of (order, nnz): below the
    // memory threshold the flat copies win, above it the plan compresses.
    #[test]
    fn auto_layout_resolution_is_monotone_in_size(
        args in (2usize..6, 1usize..1_000_000_000),
    ) {
        let (order, nnz) = args;
        let resolved = IndexLayout::Auto.resolve_for(order, nnz);
        prop_assert!(resolved == IndexLayout::ModeSorted || resolved == IndexLayout::Csf);
        // Monotone: if this size compresses, every larger size does too.
        if resolved == IndexLayout::Csf {
            prop_assert_eq!(
                IndexLayout::Auto.resolve_for(order, nnz.saturating_mul(2)),
                IndexLayout::Csf
            );
        }
        // Concrete layouts never re-resolve.
        for fixed in [IndexLayout::Coo, IndexLayout::ModeSorted, IndexLayout::Csf] {
            prop_assert_eq!(fixed.resolve_for(order, nnz), fixed);
        }
    }
}

/// End-to-end: on every generated dataset profile, full solves under the
/// three concrete layouts produce bit-identical factors, core and fits, at
/// every pool width — so the layout knob is invisible to results.
#[test]
fn solves_are_bit_identical_across_layouts_on_all_profiles() {
    for name in ProfileName::all() {
        let profile = DatasetProfile::new(name);
        let tensor = profile.generate(2_500, 13);
        let ranks: Vec<usize> = tensor.dims().iter().map(|&d| d.min(3)).collect();
        let config = TuckerConfig::new(ranks).max_iterations(2).seed(5);
        for threads in [1usize, 2, 4] {
            let mut reference: Option<TuckerDecomposition> = None;
            for layout in [IndexLayout::Coo, IndexLayout::ModeSorted, IndexLayout::Csf] {
                let mut solver = TuckerSolver::plan(
                    &tensor,
                    PlanOptions::new()
                        .num_threads(threads)
                        .ttmc_strategy(TtmcStrategy::PerMode)
                        .index_layout(layout),
                )
                .unwrap();
                assert_eq!(solver.index_layout(), layout, "{name:?}");
                let result = solver.solve(&config).unwrap();
                match &reference {
                    None => reference = Some(result),
                    Some(base) => {
                        assert_eq!(
                            base.fits, result.fits,
                            "{name:?} @ {threads} threads, {layout:?}"
                        );
                        assert_eq!(
                            base.core.as_slice(),
                            result.core.as_slice(),
                            "{name:?} @ {threads} threads, {layout:?}: core diverged"
                        );
                        for (u, v) in base.factors.iter().zip(result.factors.iter()) {
                            let ub: Vec<u64> = u.as_slice().iter().map(|x| x.to_bits()).collect();
                            let vb: Vec<u64> = v.as_slice().iter().map(|x| x.to_bits()).collect();
                            assert_eq!(
                                ub, vb,
                                "{name:?} @ {threads} threads, {layout:?}: factor diverged"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// The point of CSF: on tensors whose foreign indices fit `u32`, the
/// compressed plan is strictly smaller than the flat mode-sorted plan.
#[test]
fn csf_plan_is_smaller_than_mode_sorted_on_profiles() {
    for name in ProfileName::all() {
        let profile = DatasetProfile::new(name);
        let tensor = profile.generate(6_000, 17);
        let plan_bytes = |layout| {
            TuckerSolver::plan(
                &tensor,
                PlanOptions::new()
                    .num_threads(1)
                    .ttmc_strategy(TtmcStrategy::PerMode)
                    .index_layout(layout),
            )
            .unwrap()
            .memory_bytes()
        };
        let coo = plan_bytes(IndexLayout::Coo);
        let sorted = plan_bytes(IndexLayout::ModeSorted);
        let csf = plan_bytes(IndexLayout::Csf);
        assert!(coo < csf, "{name:?}: CSF adds structure over bare COO");
        assert!(
            csf < sorted,
            "{name:?}: CSF plan ({csf} bytes) not below mode-sorted ({sorted} bytes)"
        );
    }
}

/// Streamed ingestion feeds the same solves: a tensor written to disk with
/// a `# dims:` header, read back through the bounded chunked reader, and
/// solved under CSF matches the in-memory original bit for bit.
#[test]
fn streamed_roundtrip_preserves_solves_bitwise() {
    let tensor = random_tensor(&[40, 30, 20], 2_000, 29);
    let dir = std::env::temp_dir().join(format!("tucker-layouts-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.tns");
    write_tns_file_with_header(&tensor, &path).unwrap();
    let options = StreamOptions::new().chunk_nonzeros(97);
    let (back, stats) = read_tns_file_streamed(&path, &options).unwrap();
    assert_eq!(back.dims(), tensor.dims());
    assert_eq!(back.nnz(), tensor.nnz());
    let word = std::mem::size_of::<usize>();
    assert!(stats.peak_buffer_bytes <= 97 * (3 + 2) * word);

    let config = TuckerConfig::new(vec![3, 3, 3]).max_iterations(2).seed(2);
    let solve = |t: &SparseTensor| {
        TuckerSolver::plan(
            t,
            PlanOptions::new()
                .num_threads(1)
                .ttmc_strategy(TtmcStrategy::PerMode)
                .index_layout(IndexLayout::Csf),
        )
        .unwrap()
        .solve(&config)
        .unwrap()
    };
    let a = solve(&tensor);
    let b = solve(&back);
    assert_eq!(a.fits, b.fits);
    assert_eq!(a.core.as_slice(), b.core.as_slice());
    std::fs::remove_dir_all(&dir).ok();
}
