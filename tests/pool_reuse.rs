//! Pool-reuse stress: a planned session must spawn its workers exactly once
//! and serve every subsequent solve — including repeated `solve_many`
//! batches — without creating another thread.
//!
//! This file holds a single test because it asserts on the process-wide
//! `rayon::worker_threads_spawned` counter; unrelated tests building pools
//! in the same process would perturb it.

use hooi::{PlanOptions, TuckerConfig, TuckerSolver};
use std::time::Duration;

#[test]
fn repeated_solve_many_reuses_the_session_pool() {
    let tensor = datagen::random_tensor(&[20, 18, 16], 900, 3);
    let mut solver = TuckerSolver::plan(&tensor, PlanOptions::new().num_threads(3)).unwrap();
    let after_plan = rayon::worker_threads_spawned();

    let configs = vec![
        TuckerConfig::new(vec![2, 2, 2]).max_iterations(2),
        TuckerConfig::new(vec![3, 3, 3]).max_iterations(2).seed(9),
        TuckerConfig::new(vec![2, 3, 2]).max_iterations(1),
    ];
    let mut first_batch_pool_time = None;
    for round in 0..4 {
        let results = solver.solve_many(&configs).unwrap();
        assert_eq!(results.len(), configs.len());
        for (i, result) in results.iter().enumerate() {
            if round == 0 && i == 0 {
                // Only the very first solve of the session pays for pool
                // bring-up (and symbolic analysis).
                assert_eq!(result.timings.pool, solver.pool_build_time());
                assert_eq!(result.timings.symbolic, solver.symbolic_time());
                first_batch_pool_time = Some(result.timings.pool);
            } else {
                assert_eq!(
                    result.timings.pool,
                    Duration::ZERO,
                    "round {round} solve {i} should reuse the pool"
                );
                assert_eq!(result.timings.symbolic, Duration::ZERO);
            }
        }
        assert_eq!(
            rayon::worker_threads_spawned(),
            after_plan,
            "round {round}: solves must not spawn threads"
        );
    }
    assert!(first_batch_pool_time.is_some());
    assert_eq!(solver.completed_solves(), 4 * configs.len());

    // Individual solves after the batches also reuse the same workers.
    let extra = solver
        .solve(&TuckerConfig::new(vec![2, 2, 2]).max_iterations(1))
        .unwrap();
    assert_eq!(extra.timings.pool, Duration::ZERO);
    assert_eq!(rayon::worker_threads_spawned(), after_plan);
}
