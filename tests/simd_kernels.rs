//! SIMD kernel-tier contracts, from raw kernels up to full solves.
//!
//! The dispatch layer (`linalg::simd`, re-exported as `sptensor::simd`)
//! promises that `Scalar` and `Avx2` are the **same IEEE arithmetic** —
//! separate multiply and add per element, no fused contractions, no
//! horizontal reductions — so switching tiers never changes a single
//! output bit.  `Fma` is the explicitly opt-in exception: it fuses each
//! multiply+add to one rounding and is only held to a tolerance.  These
//! tests pin all of that:
//!
//! * raw-kernel bitwise identity (`axpy`, `scaled_outer2`,
//!   `scaled_outer3`, `gemv`, and the Kronecker accumulation at every
//!   arity) over arbitrary lengths, remainder lanes 1–3 included, and
//!   regardless of buffer address (aligned vs deliberately misaligned);
//! * the arity-2 zero-coefficient skip asymmetry documented on
//!   `accumulate_scaled_kron` — the exact test the kron docs reference;
//! * full solves bit-identical between `Scalar` and `Avx2` on every
//!   generated dataset profile;
//! * `Fma` solves agreeing with `Scalar` to tight tolerance;
//! * the `KernelIsa` parse/resolve surface.
//!
//! Vector tests self-skip on hosts without AVX2.  Assertions that depend
//! on the process environment are guarded on `KernelIsa::from_env()` so
//! the suite also passes under a forced `TUCKER_KERNEL` (as CI runs it).

use proptest::prelude::*;
use tucker_repro::prelude::*;
use tucker_repro::sptensor::simd::{self, AlignedVec};
use tucker_repro::sptensor::{accumulate_scaled_kron_isa, kron_rows};

/// Deterministic pseudo-random values in `[-0.5, 0.5)`.
fn lcg_vec(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(0xD1B5_4A32_D192_ED03)
        | 1;
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect()
}

fn bits(x: &[f64]) -> Vec<u64> {
    x.iter().map(|v| v.to_bits()).collect()
}

/// Runs `body` once into a 64-byte-aligned accumulator and once into a
/// deliberately misaligned one (`Vec` storage offset by one element), and
/// asserts both produce the same bits: alignment is a throughput knob,
/// never a results knob.
fn run_aligned_and_misaligned(
    len: usize,
    seed: u64,
    body: impl Fn(&mut [f64]),
) -> (Vec<u64>, Vec<u64>) {
    let init = lcg_vec(len, seed ^ 0xACC);
    let mut aligned = AlignedVec::zeros(len);
    aligned.copy_from_slice(&init);
    body(&mut aligned);
    let mut backing = vec![0.0f64; len + 1];
    backing[1..].copy_from_slice(&init);
    body(&mut backing[1..]);
    (bits(&aligned), bits(&backing[1..]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Lengths 1..70 sweep every remainder class: full 8-wide blocks, the
    // 4-wide tail, and 1–3 scalar leftovers.
    #[test]
    fn axpy_avx2_bit_identical_to_scalar(args in (1usize..70, 0u64..1000)) {
        let (len, seed) = args;
        if !KernelIsa::Avx2.supported() {
            return;
        }
        let x = lcg_vec(len, seed);
        let alpha = lcg_vec(1, seed ^ 0xA1)[0] * 3.0;
        let (scalar_a, scalar_m) = run_aligned_and_misaligned(len, seed, |out| {
            simd::axpy(KernelIsa::Scalar, alpha, &x, out);
        });
        let (avx_a, avx_m) = run_aligned_and_misaligned(len, seed, |out| {
            simd::axpy(KernelIsa::Avx2, alpha, &x, out);
        });
        prop_assert_eq!(&scalar_a, &scalar_m);
        prop_assert_eq!(&avx_a, &avx_m);
        prop_assert_eq!(scalar_a, avx_a);
    }

    #[test]
    fn scaled_outer2_avx2_bit_identical_to_scalar(
        args in (1usize..18, 1usize..18, 0u64..1000),
    ) {
        let (ra, rb, seed) = args;
        if !KernelIsa::Avx2.supported() {
            return;
        }
        let u = lcg_vec(ra, seed);
        let v = lcg_vec(rb, seed ^ 0xB2);
        let x = lcg_vec(1, seed ^ 0xC3)[0] * 2.0;
        let len = ra * rb;
        let (scalar_a, scalar_m) = run_aligned_and_misaligned(len, seed, |out| {
            simd::scaled_outer2(KernelIsa::Scalar, x, &u, &v, out);
        });
        let (avx_a, avx_m) = run_aligned_and_misaligned(len, seed, |out| {
            simd::scaled_outer2(KernelIsa::Avx2, x, &u, &v, out);
        });
        prop_assert_eq!(&scalar_a, &scalar_m);
        prop_assert_eq!(&avx_a, &avx_m);
        prop_assert_eq!(scalar_a, avx_a);
    }

    #[test]
    fn scaled_outer3_avx2_bit_identical_to_scalar(
        args in (1usize..10, 1usize..10, 1usize..10, 0u64..1000),
    ) {
        let (ra, rb, rc, seed) = args;
        if !KernelIsa::Avx2.supported() {
            return;
        }
        let u = lcg_vec(ra, seed);
        let v = lcg_vec(rb, seed ^ 0xD4);
        let w = lcg_vec(rc, seed ^ 0xE5);
        let x = lcg_vec(1, seed ^ 0xF6)[0] * 2.0;
        let len = ra * rb * rc;
        let (scalar_a, scalar_m) = run_aligned_and_misaligned(len, seed, |out| {
            simd::scaled_outer3(KernelIsa::Scalar, x, &u, &v, &w, out);
        });
        let (avx_a, avx_m) = run_aligned_and_misaligned(len, seed, |out| {
            simd::scaled_outer3(KernelIsa::Avx2, x, &u, &v, &w, out);
        });
        prop_assert_eq!(&scalar_a, &scalar_m);
        prop_assert_eq!(&avx_a, &avx_m);
        prop_assert_eq!(scalar_a, avx_a);
    }

    #[test]
    fn gemv_avx2_bit_identical_to_scalar(
        args in (1usize..14, 1usize..40, 0u64..1000),
    ) {
        let (rows, cols, seed) = args;
        if !KernelIsa::Avx2.supported() {
            return;
        }
        let a = lcg_vec(rows * cols, seed);
        let x = lcg_vec(cols, seed ^ 0x9A);
        let (scalar_a, scalar_m) = run_aligned_and_misaligned(rows, seed, |out| {
            simd::gemv(KernelIsa::Scalar, &a, rows, cols, &x, out);
        });
        let (avx_a, avx_m) = run_aligned_and_misaligned(rows, seed, |out| {
            simd::gemv(KernelIsa::Avx2, &a, rows, cols, &x, out);
        });
        prop_assert_eq!(&scalar_a, &scalar_m);
        prop_assert_eq!(&avx_a, &avx_m);
        prop_assert_eq!(scalar_a, avx_a);
    }

    // The kron accumulation has three distinct branches (arity 1, arity 2
    // with the coefficient skip, arity ≥3 via materialization); all must
    // be ISA-transparent.
    #[test]
    fn kron_accumulation_avx2_bit_identical_at_every_arity(
        args in (1usize..5, 1usize..6, 1usize..6, 1usize..6, 1usize..6, 0u64..1000),
    ) {
        let (arity, d1, d2, d3, d4, seed) = args;
        if !KernelIsa::Avx2.supported() {
            return;
        }
        let dims = [d1, d2, d3, d4];
        let rows_data: Vec<Vec<f64>> = dims[..arity]
            .iter()
            .enumerate()
            .map(|(i, &d)| lcg_vec(d, seed ^ (i as u64 + 1)))
            .collect();
        let rows: Vec<&[f64]> = rows_data.iter().map(|r| r.as_slice()).collect();
        let len: usize = dims[..arity].iter().product();
        let alpha = lcg_vec(1, seed ^ 0x77)[0] * 2.0;
        let run = |isa: KernelIsa| {
            let mut acc = lcg_vec(len, seed ^ 0xACC);
            let mut scratch = vec![0.0f64; len];
            accumulate_scaled_kron_isa(isa, alpha, &rows, &mut acc, &mut scratch);
            bits(&acc)
        };
        prop_assert_eq!(run(KernelIsa::Scalar), run(KernelIsa::Avx2));
    }
}

/// The regression test the `accumulate_scaled_kron` docs reference: zero
/// factor entries exercise the arity-2 zero-coefficient **skip** (rows
/// whose hoisted `alpha·uᵢ` is `0.0` are not touched) against the
/// skip-free arity-1/arity-≥3 paths, and the asymmetry must stay
/// bit-transparent — at every arity, at every supported ISA, and through
/// every index layout of the real TTMc kernels.
#[test]
fn zero_factor_entries_keep_all_arities_bit_identical() {
    use tucker_repro::hooi::symbolic::SymbolicTtmc;
    use tucker_repro::hooi::ttmc::ttmc_mode;

    let isas: Vec<KernelIsa> = [KernelIsa::Scalar, KernelIsa::Avx2, KernelIsa::Fma]
        .into_iter()
        .filter(|isa| isa.supported())
        .collect();

    // A skip-free scalar reference that mirrors each arity's *rounding
    // order* exactly: arity 1 and arity ≥3 scale by `alpha` last (the
    // materialized kron + axpy order), arity 2 hoists `alpha·uᵢ` first —
    // but, unlike the real branch, never skips a zero coefficient.
    // Equality with the dispatched path then proves the skip is invisible.
    // Under `Fma` the reference fuses the same single multiply+add the
    // fused kernels do.
    let reference_accumulate = |isa: KernelIsa, alpha: f64, rows: &[&[f64]], acc: &mut [f64]| {
        let fused = isa == KernelIsa::Fma;
        let madd = |a: f64, c: f64, x: f64| if fused { c.mul_add(x, a) } else { a + c * x };
        match rows.len() {
            1 => {
                for (a, &x) in acc.iter_mut().zip(rows[0]) {
                    *a = madd(*a, alpha, x);
                }
            }
            2 => {
                let (u, v) = (rows[0], rows[1]);
                for (i, &ui) in u.iter().enumerate() {
                    let coeff = alpha * ui;
                    for (j, &vj) in v.iter().enumerate() {
                        let a = &mut acc[i * v.len() + j];
                        *a = madd(*a, coeff, vj);
                    }
                }
            }
            _ => {
                let mut kron = vec![0.0f64; acc.len()];
                kron_rows(rows, &mut kron);
                for (a, &s) in acc.iter_mut().zip(&kron) {
                    *a = madd(*a, alpha, s);
                }
            }
        }
    };

    // Kernel level: rows riddled with exact zeros, every arity, each ISA's
    // dispatched branch against the skip-free reference (and `Fma` is
    // covered too: the skip argument is rounding-free, so it holds within
    // the fused tier).
    for arity in 1usize..=4 {
        let dims = &[5usize, 7, 3, 4][..arity];
        for seed in [11u64, 29, 53] {
            let rows_data: Vec<Vec<f64>> = dims
                .iter()
                .enumerate()
                .map(|(i, &d)| {
                    let mut r = lcg_vec(d, seed ^ (i as u64 + 1));
                    // Zero a deterministic subset, always including row 0.
                    for (j, rj) in r.iter_mut().enumerate() {
                        if j % 3 == 0 {
                            *rj = 0.0;
                        }
                    }
                    r
                })
                .collect();
            let rows: Vec<&[f64]> = rows_data.iter().map(|r| r.as_slice()).collect();
            let len: usize = dims.iter().product();
            for &isa in &isas {
                for alpha in [1.25f64, 0.0] {
                    let init = lcg_vec(len, seed ^ 0xACC);
                    let mut direct = init.clone();
                    let mut scratch = vec![0.0f64; len];
                    accumulate_scaled_kron_isa(isa, alpha, &rows, &mut direct, &mut scratch);
                    let mut reference = init.clone();
                    reference_accumulate(isa, alpha, &rows, &mut reference);
                    assert_eq!(
                        bits(&direct),
                        bits(&reference),
                        "arity {arity}, {isa}, alpha {alpha}: zero-skip changed bits"
                    );
                }
            }
        }
    }

    // TTMc level: factor matrices with zeroed entries flowing through the
    // per-nonzero kernels of all three index layouts must still match the
    // COO gather bit for bit, at Scalar and Avx2.
    let tensor = random_tensor(&[9, 8, 7, 6], 300, 41);
    let factors: Vec<Matrix> = tensor
        .dims()
        .iter()
        .enumerate()
        .map(|(m, &d)| {
            let mut f = Matrix::random(d, 3, 90 + m as u64);
            for (j, x) in f.as_mut_slice().iter_mut().enumerate() {
                if j % 4 == 0 {
                    *x = 0.0;
                }
            }
            f
        })
        .collect();
    let coo = SymbolicTtmc::build_without_layout(&tensor);
    let sorted = SymbolicTtmc::build(&tensor);
    let mut csf = SymbolicTtmc::build_without_layout(&tensor);
    csf.attach_csf_layouts(&tensor);
    for mode in 0..tensor.order() {
        let reference = bits(ttmc_mode(&tensor, coo.mode(mode), &factors, mode).as_slice());
        for sym in [&sorted, &csf] {
            let got = bits(ttmc_mode(&tensor, sym.mode(mode), &factors, mode).as_slice());
            assert_eq!(
                reference, got,
                "mode {mode}: layout diverged with zero factors"
            );
        }
    }
}

/// End-to-end: full solves planned at `Scalar` and at `Avx2` produce
/// bit-identical fits, cores and factors on every generated dataset
/// profile — the kernel tier is invisible to results.
#[test]
fn solves_are_bit_identical_scalar_vs_avx2_on_all_profiles() {
    if !KernelIsa::Avx2.supported() {
        eprintln!("skipping: host lacks AVX2");
        return;
    }
    for name in ProfileName::all() {
        let profile = DatasetProfile::new(name);
        let tensor = profile.generate(2_500, 13);
        let ranks: Vec<usize> = tensor.dims().iter().map(|&d| d.min(3)).collect();
        let config = TuckerConfig::new(ranks).max_iterations(2).seed(5);
        let solve = |isa: KernelIsa| {
            TuckerSolver::plan(&tensor, PlanOptions::new().num_threads(2).kernel_isa(isa))
                .unwrap()
                .solve(&config)
                .unwrap()
        };
        let scalar = solve(KernelIsa::Scalar);
        let avx2 = solve(KernelIsa::Avx2);
        assert_eq!(scalar.fits, avx2.fits, "{name:?}: fits diverged");
        assert_eq!(
            bits(scalar.core.as_slice()),
            bits(avx2.core.as_slice()),
            "{name:?}: core diverged"
        );
        for (u, v) in scalar.factors.iter().zip(avx2.factors.iter()) {
            assert_eq!(
                bits(u.as_slice()),
                bits(v.as_slice()),
                "{name:?}: factor diverged"
            );
        }
    }
}

/// The opt-in `Fma` tier re-associates nothing and fuses each element's
/// multiply+add, so its fits track `Scalar` to near machine precision.
#[test]
fn fma_solve_fit_agrees_with_scalar_within_tolerance() {
    if !KernelIsa::Fma.supported() {
        eprintln!("skipping: host lacks FMA");
        return;
    }
    let tensor = random_tensor(&[30, 25, 20], 2_000, 19);
    let config = TuckerConfig::new(vec![4, 4, 4]).max_iterations(3).seed(7);
    let solve = |isa: KernelIsa| {
        TuckerSolver::plan(&tensor, PlanOptions::new().num_threads(1).kernel_isa(isa))
            .unwrap()
            .solve(&config)
            .unwrap()
    };
    let scalar = solve(KernelIsa::Scalar);
    let fma = solve(KernelIsa::Fma);
    assert_eq!(scalar.fits.len(), fma.fits.len());
    for (a, b) in scalar.fits.iter().zip(fma.fits.iter()) {
        assert!(
            (a - b).abs() < 1e-10,
            "fma fit {b} drifted from scalar fit {a}"
        );
    }
}

/// The `KernelIsa` surface: parsing, display, resolution invariants, and
/// the session accessor.  Environment-dependent claims are only asserted
/// when `TUCKER_KERNEL` is not forcing the process.
#[test]
fn kernel_isa_parse_resolve_and_session_accessor() {
    for isa in [
        KernelIsa::Auto,
        KernelIsa::Scalar,
        KernelIsa::Avx2,
        KernelIsa::Fma,
    ] {
        assert_eq!(KernelIsa::parse(isa.as_str()), Some(isa));
        assert_eq!(
            KernelIsa::parse(&isa.as_str().to_ascii_uppercase()),
            Some(isa)
        );
        // Resolution always lands on a concrete, supported tier.
        let resolved = isa.resolve();
        assert_ne!(resolved, KernelIsa::Auto);
        assert!(resolved.supported());
    }
    assert_eq!(KernelIsa::parse("sse9"), None);
    assert_eq!(KernelIsa::parse(""), None);
    assert_ne!(KernelIsa::resolved_default(), KernelIsa::Auto);
    // Auto never opts into the non-bit-identical tier on its own.
    if KernelIsa::from_env().is_none() {
        assert_ne!(KernelIsa::Auto.resolve(), KernelIsa::Fma);
        assert_eq!(KernelIsa::Scalar.resolve(), KernelIsa::Scalar);
    }

    let tensor = random_tensor(&[12, 11, 10], 200, 3);
    let solver = TuckerSolver::plan(
        &tensor,
        PlanOptions::new()
            .num_threads(1)
            .kernel_isa(KernelIsa::Scalar),
    )
    .unwrap();
    // Never Auto; exactly the request when no environment override forces
    // the process.
    assert_ne!(solver.kernel_isa(), KernelIsa::Auto);
    assert!(solver.kernel_isa().supported());
    if KernelIsa::from_env().is_none() {
        assert_eq!(solver.kernel_isa(), KernelIsa::Scalar);
    }
}
