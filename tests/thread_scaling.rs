//! Thread-scaling gate: on a host with at least 4 CPUs, the TTMc sweep at
//! 4 threads must reach at least 1.5× the 1-thread throughput on a skewed
//! profile tensor — real scaling, not just "parallel is not slower".
//!
//! Marked `#[ignore]` because it is timing-sensitive and meaningless on a
//! narrow builder; the CI workflow runs it explicitly
//! (`cargo test --release --test thread_scaling -- --ignored`) on the
//! multi-core runner, and the test itself skips gracefully when
//! `available_parallelism()` is below 4 (4 workers cannot demonstrate a
//! 4-thread speedup with fewer than 4 CPUs to run on).

use datagen::{DatasetProfile, ProfileName};
use hooi::hosvd::random_factors;
use hooi::symbolic::SymbolicTtmc;
use hooi::ttmc::ttmc_mode;
use std::time::Instant;

/// Minimum 4-thread-over-1-thread TTMc speedup the gate demands on hosts
/// with at least 4 CPUs.  Deliberately below the ~3× the flop-weighted
/// scheduler reaches on an idle 4-core machine, so shared CI runners do
/// not flake, but far above the old "not slower" bar.
const REQUIRED_SPEEDUP: f64 = 1.5;

#[test]
#[ignore = "timing-sensitive; run explicitly on a multi-core host (CI thread-scaling job)"]
fn four_thread_ttmc_scales_on_skewed_profile() {
    let hardware = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if hardware < 4 {
        eprintln!(
            "skipping thread-scaling gate: {hardware} hardware thread(s) available, \
             a 4-thread speedup needs at least 4"
        );
        return;
    }

    let profile = DatasetProfile::new(ProfileName::Delicious);
    let tensor = profile.generate(150_000, 11);
    let factors = random_factors(tensor.dims(), profile.paper_ranks(), 3);

    // One symbolic analysis shared by both measurements; each measurement
    // gets its own persistent pool, warmed up before timing.
    let sym = SymbolicTtmc::build(&tensor);
    let time_at = |threads: usize| -> f64 {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        pool.install(|| {
            let sweep = || {
                for mode in 0..tensor.order() {
                    let _ = ttmc_mode(&tensor, sym.mode(mode), &factors, mode);
                }
            };
            sweep(); // warm-up
            (0..3)
                .map(|_| {
                    let t0 = Instant::now();
                    sweep();
                    t0.elapsed().as_secs_f64()
                })
                .fold(f64::INFINITY, f64::min)
        })
    };

    // Up to three independent measurement attempts so one noisy-neighbor
    // burst on a shared CI runner cannot produce a false failure.
    let mut last = (0.0f64, 0.0f64);
    for attempt in 1..=3 {
        let t1 = time_at(1);
        let t4 = time_at(4);
        eprintln!(
            "attempt {attempt}: TTMc sweep 1 thread {t1:.4}s, 4 threads {t4:.4}s (speedup {:.2}x)",
            t1 / t4
        );
        if t1 / t4 >= REQUIRED_SPEEDUP {
            return;
        }
        last = (t1, t4);
    }
    let (t1, t4) = last;
    panic!(
        "4-thread TTMc speedup {:.2}x below the required {REQUIRED_SPEEDUP}x \
         (1 thread {t1:.4}s, 4 threads {t4:.4}s) in all of 3 attempts on \
         {hardware} hardware threads",
        t1 / t4
    );
}
