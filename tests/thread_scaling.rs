//! Thread-scaling gate: on a multi-core host, the TTMc kernel at 4 threads
//! must be measurably faster than at 1 thread on a skewed profile tensor.
//!
//! Marked `#[ignore]` because it is timing-sensitive and meaningless on a
//! single-core builder; the CI workflow runs it explicitly
//! (`cargo test --release --test thread_scaling -- --ignored`) on the
//! multi-core runner, and the test itself skips gracefully when
//! `available_parallelism() == 1`.

use datagen::{DatasetProfile, ProfileName};
use hooi::hosvd::random_factors;
use hooi::symbolic::SymbolicTtmc;
use hooi::ttmc::ttmc_mode;
use std::time::Instant;

#[test]
#[ignore = "timing-sensitive; run explicitly on a multi-core host (CI thread-scaling job)"]
fn four_thread_ttmc_beats_one_thread_on_skewed_profile() {
    let hardware = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if hardware == 1 {
        eprintln!("skipping thread-scaling gate: only one hardware thread available");
        return;
    }

    let profile = DatasetProfile::new(ProfileName::Delicious);
    let tensor = profile.generate(150_000, 11);
    let factors = random_factors(tensor.dims(), profile.paper_ranks(), 3);

    // One symbolic analysis shared by both measurements; each measurement
    // gets its own persistent pool, warmed up before timing.
    let sym = SymbolicTtmc::build(&tensor);
    let time_at = |threads: usize| -> f64 {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool");
        pool.install(|| {
            let sweep = || {
                for mode in 0..tensor.order() {
                    let _ = ttmc_mode(&tensor, sym.mode(mode), &factors, mode);
                }
            };
            sweep(); // warm-up
            (0..3)
                .map(|_| {
                    let t0 = Instant::now();
                    sweep();
                    t0.elapsed().as_secs_f64()
                })
                .fold(f64::INFINITY, f64::min)
        })
    };

    // Generous threshold (only 10% required even though 4 workers on a
    // 2-core runner should win ~2x), and up to three independent
    // measurement attempts so one noisy-neighbor burst on a shared CI
    // runner cannot produce a false failure.
    let mut last = (0.0f64, 0.0f64);
    for attempt in 1..=3 {
        let t1 = time_at(1);
        let t4 = time_at(4);
        eprintln!(
            "attempt {attempt}: TTMc sweep 1 thread {t1:.4}s, 4 threads {t4:.4}s (speedup {:.2}x)",
            t1 / t4
        );
        if t4 < 0.9 * t1 {
            return;
        }
        last = (t1, t4);
    }
    let (t1, t4) = last;
    panic!(
        "4-thread TTMc ({t4:.4}s) not measurably below 1-thread ({t1:.4}s) in any of 3 attempts \
         on {hardware} hardware threads"
    );
}
