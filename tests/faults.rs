//! Chaos tests of the fault-tolerant executor — the `chaos-smoke` CI gate.
//!
//! The contract under test: for every seeded *decisive* fault plan, every
//! surviving rank resolves to a typed [`TuckerError::RankFailed`] within
//! the configured deadline — no hangs (a watchdog thread enforces this),
//! no cross-thread panics — and all ranks agree on the failure's origin.
//! A plan that never fires, and in particular the empty plan, leaves the
//! run bit-identical to the fault-free executor with identical
//! [`CommCounters`].

use proptest::prelude::*;
use std::sync::mpsc;
use std::thread;
use std::time::Duration;
use tucker_repro::distsim::{tcp_world_with, Message, Phase, Tag};
use tucker_repro::prelude::*;

/// Per-recv deadline for chaos runs: long enough for real work on a loaded
/// CI box, short enough that a deliberately dropped message fails fast.
const CHAOS_TIMEOUT: Duration = Duration::from_millis(400);

/// The no-hang budget: generous next to the recv deadline, so tripping it
/// means a genuine hang, not a slow machine.
const WATCHDOG: Duration = Duration::from_secs(60);

/// Runs `f` on its own thread and panics if it does not finish within
/// [`WATCHDOG`] — the assertion that no fault schedule can hang the
/// executor.  Panics inside `f` are re-thrown here.
fn with_watchdog<T: Send + 'static>(label: String, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let handle = thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(WATCHDOG) {
        Ok(value) => {
            handle.join().expect("watchdog worker");
            value
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            // The worker panicked before sending; join re-throws it.
            handle.join().expect("watchdog worker panicked");
            unreachable!("disconnected sender without a panic")
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            panic!("{label}: executor hung past the {WATCHDOG:?} watchdog")
        }
    }
}

fn chaos_options(backend: CommBackend) -> ExecOptions {
    ExecOptions::new()
        .backend(backend)
        .deadline(CommDeadline::with_recv_timeout(CHAOS_TIMEOUT))
}

/// One chaos case: run the plan under the watchdog and return the chaos
/// run next to a fault-free reference run with the same options.
fn chaos_case(
    tensor: SparseTensor,
    num_ranks: usize,
    ranks: Vec<usize>,
    seed: u64,
    backend: CommBackend,
    plan: FaultPlan,
) -> (ChaosRun, DistributedRun) {
    let label = format!("{backend:?} seed {seed} p={num_ranks}");
    with_watchdog(label, move || {
        let config = TuckerConfig::new(ranks.clone())
            .max_iterations(3)
            .seed(seed);
        let sim = SimConfig::new(num_ranks, Grain::Fine, PartitionMethod::Random, ranks);
        let setup = DistributedSetup::build(&tensor, &sim);
        let opts = chaos_options(backend);
        let chaos = execute_hooi_chaos(&tensor, &setup, &config, &opts, &plan)
            .expect("chaos entry point accepts the configuration");
        let clean = execute_hooi(&tensor, &setup, &config, &opts).expect("fault-free reference");
        (chaos, clean)
    })
}

fn assert_chaos_contract(chaos: &ChaosRun, clean: &DistributedRun, label: &str) {
    if chaos.faults_fired > 0 {
        // Every surviving rank must land on a typed failure — never a
        // hang, never a panic — and the run's representative error must be
        // one of the first-hand origins (a peer of the faulted link can
        // legitimately observe its own timeout before the abort arrives).
        let representative_origin = match &chaos.outcome {
            Err(TuckerError::RankFailed { rank, .. }) => *rank,
            other => panic!("{label}: fired fault produced {other:?}, not RankFailed"),
        };
        let mut origins = Vec::new();
        for (r, per_rank) in chaos.rank_errors.iter().enumerate() {
            match per_rank {
                Some(TuckerError::RankFailed { rank, .. }) => origins.push(*rank),
                other => panic!("{label}: rank {r} reported {other:?}, not RankFailed"),
            }
        }
        assert_eq!(
            Some(representative_origin),
            origins.iter().copied().min(),
            "{label}: the representative failure must be the lowest origin"
        );
        assert!(
            chaos.wall < WATCHDOG / 2,
            "{label}: unwind took {:?}, far past the deadline",
            chaos.wall
        );
    } else {
        // A plan that never fired must be invisible: same bits, same
        // counters as the unwrapped transport.
        let dec = match &chaos.outcome {
            Ok(dec) => dec,
            Err(e) => panic!("{label}: no fault fired yet the run failed: {e}"),
        };
        assert_eq!(dec.fits, clean.decomposition.fits, "{label}: fits diverged");
        for (m, (a, b)) in dec
            .factors
            .iter()
            .zip(clean.decomposition.factors.iter())
            .enumerate()
        {
            assert_eq!(a, b, "{label}: factor {m} not bit-identical");
        }
        assert_eq!(
            dec.core.as_slice(),
            clean.decomposition.core.as_slice(),
            "{label}: core not bit-identical"
        );
        assert_eq!(chaos.comm, clean.comm, "{label}: counters diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    // The tentpole property on the channel backend, over order-3 and
    // order-4 tensors and 2-4 ranks: every decisive injected fault yields
    // typed `RankFailed` on all ranks within the deadline, and plans that
    // never fire are bit-invisible.
    #[test]
    fn seeded_faults_resolve_to_typed_failures_on_channels(
        fault_seed in 0u64..100_000,
        num_ranks in 2usize..5,
        tensor_seed in 0u64..1_000,
        order4 in 0u64..2,
    ) {
        let (tensor, ranks) = if order4 == 1 {
            (random_tensor(&[8, 7, 6, 5], 250, tensor_seed), vec![2, 2, 2, 2])
        } else {
            (random_tensor(&[11, 9, 8], 300, tensor_seed), vec![2, 2, 2])
        };
        let plan = FaultPlan::seeded_decisive(fault_seed, num_ranks);
        let (chaos, clean) = chaos_case(
            tensor,
            num_ranks,
            ranks,
            tensor_seed,
            CommBackend::Channel,
            plan,
        );
        assert_chaos_contract(&chaos, &clean, &format!("channel fault_seed={fault_seed}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    // The same property over real loopback sockets (skipped where the
    // sandbox forbids them), which additionally exercises reader-thread
    // teardown on every faulted run.
    #[test]
    fn seeded_faults_resolve_to_typed_failures_on_tcp(
        fault_seed in 0u64..100_000,
        num_ranks in 2usize..4,
        tensor_seed in 0u64..1_000,
    ) {
        if !loopback_tcp_available() {
            return;
        }
        let tensor = random_tensor(&[10, 8, 7], 250, tensor_seed);
        let plan = FaultPlan::seeded_decisive(fault_seed, num_ranks);
        let (chaos, clean) = chaos_case(
            tensor,
            num_ranks,
            vec![2, 2, 2],
            tensor_seed,
            CommBackend::Tcp,
            plan,
        );
        assert_chaos_contract(&chaos, &clean, &format!("tcp fault_seed={fault_seed}"));
    }
}

/// The empty plan is exact pass-through on both backends: bit-identical
/// decomposition and word-identical counters against the unwrapped
/// transports.
#[test]
fn empty_plan_is_bit_identical_on_both_backends() {
    for backend in [CommBackend::Channel, CommBackend::Tcp] {
        if backend == CommBackend::Tcp && !loopback_tcp_available() {
            eprintln!("skipping TCP empty-plan check: loopback sockets unavailable");
            continue;
        }
        let tensor = random_tensor(&[14, 12, 10], 500, 21);
        let (chaos, clean) = chaos_case(tensor, 3, vec![3, 2, 2], 21, backend, FaultPlan::empty());
        assert_eq!(chaos.faults_fired, 0);
        assert_chaos_contract(&chaos, &clean, &format!("{backend:?} empty plan"));
    }
}

/// A permanent one-sided link cut is the harshest decisive fault; it must
/// produce `RankFailed` everywhere with the origin attributed to the rank
/// that first observed the dead link.
#[test]
fn explicit_disconnect_attributes_the_origin_consistently() {
    let tensor = random_tensor(&[12, 10, 8], 350, 3);
    let plan = FaultPlan::one(FaultTrigger {
        rank: 1,
        peer: 0,
        op: FaultOp::Send,
        nth: 0,
        action: FaultAction::Disconnect,
    });
    let (chaos, clean) = chaos_case(tensor, 3, vec![2, 2, 2], 3, CommBackend::Channel, plan);
    assert!(chaos.faults_fired >= 1, "the one trigger must fire");
    assert_chaos_contract(&chaos, &clean, "explicit disconnect");
    match &chaos.outcome {
        Err(TuckerError::RankFailed { phase, source, .. }) => {
            assert!(!phase.is_empty() && !source.is_empty());
        }
        other => panic!("expected RankFailed, got {other:?}"),
    }
}

/// Satellite: repeated `tcp_world` setup/teardown must leak neither
/// threads nor sockets — twenty full worlds built and dropped (half of
/// them mid-conversation) under one watchdog.
#[test]
fn repeated_tcp_world_setup_and_teardown_is_clean() {
    if !loopback_tcp_available() {
        eprintln!("skipping TCP stress test: loopback sockets unavailable");
        return;
    }
    with_watchdog("tcp setup/teardown stress".to_string(), || {
        for round in 0..20u64 {
            let mut world =
                tcp_world_with(3, CommDeadline::with_recv_timeout(Duration::from_secs(5)))
                    .expect("loopback world");
            if round % 2 == 0 {
                // Exchange one ring of messages before tearing down.
                let handles: Vec<_> = world
                    .drain(..)
                    .map(|mut ep| {
                        thread::spawn(move || {
                            let rank = ep.rank();
                            let p = ep.num_ranks();
                            let tag = Tag {
                                phase: Phase::Expand,
                                mode: 0,
                                step: round as u32,
                            };
                            let msg = Message {
                                tag,
                                ints: vec![rank as u64],
                                floats: vec![],
                            };
                            ep.send((rank + 1) % p, &msg).unwrap();
                            let got = ep.recv((rank + p - 1) % p, tag).unwrap();
                            assert_eq!(got.ints, vec![((rank + p - 1) % p) as u64]);
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
            }
            // Odd rounds: drop the whole world immediately after the
            // connection phase; Endpoint::drop must join every reader.
            drop(world);
        }
    });
}

/// Satellite: a silently dropped message cannot hang the run — it fails
/// fast and typed, either by the recv deadline (the receiver waited for a
/// frame that never came), by the closed link when the sender has since
/// unwound, or by a tag mismatch when a later frame arrived in its place.
#[test]
fn dropped_message_fails_by_deadline_not_by_hang() {
    let tensor = random_tensor(&[12, 10, 8], 350, 8);
    let plan = FaultPlan::one(FaultTrigger {
        rank: 0,
        peer: 1,
        op: FaultOp::Send,
        nth: 2,
        action: FaultAction::Drop,
    });
    let (chaos, _clean) = chaos_case(tensor, 2, vec![2, 2, 2], 8, CommBackend::Channel, plan);
    assert!(chaos.faults_fired >= 1);
    match &chaos.outcome {
        Err(TuckerError::RankFailed { source, .. }) => {
            assert!(
                source.contains("no message")
                    || source.contains("disconnected")
                    || source.contains("expected"),
                "source should name the deadline, the closed link, or the \
                 mismatched tag: {source}"
            );
        }
        other => panic!("expected RankFailed, got {other:?}"),
    }
}
