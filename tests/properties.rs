//! Property-based tests of the core invariants, spanning crates.

use proptest::prelude::*;
use tucker_repro::prelude::*;

/// Strategy: a small random sparse tensor (3 modes, bounded dims and nnz).
fn small_tensor_strategy() -> impl Strategy<Value = SparseTensor> {
    (4usize..12, 4usize..12, 4usize..12, 20usize..120, 0u64..1000)
        .prop_map(|(d1, d2, d3, nnz, seed)| random_tensor(&[d1, d2, d3], nnz, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn hooi_factors_always_orthonormal_and_fit_in_unit_interval(
        tensor in small_tensor_strategy(),
        rank in 1usize..4,
    ) {
        let config = TuckerConfig::new(vec![rank; 3]).max_iterations(2).seed(1);
        let result = tucker_hooi(&tensor, &config).unwrap();
        for u in &result.factors {
            prop_assert!(linalg::qr::orthogonality_error(u) < 1e-5
                // Rank-deficient slices can leave zero columns; the error is
                // then sqrt(#zero columns) at most.
                || u.ncols() as f64 >= linalg::qr::orthogonality_error(u).powi(2) - 1e-6);
        }
        let fit = result.final_fit();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&fit));
        // Fit never decreases across iterations.
        for w in result.fits.windows(2) {
            prop_assert!(w[1] >= w[0] - 1e-7);
        }
    }

    #[test]
    fn ttmc_parallel_equals_sequential(
        tensor in small_tensor_strategy(),
        rank in 1usize..4,
    ) {
        let factors: Vec<Matrix> = tensor
            .dims()
            .iter()
            .enumerate()
            .map(|(m, &d)| Matrix::random(d, rank, m as u64 + 1))
            .collect();
        let sym = hooi::symbolic::SymbolicTtmc::build(&tensor);
        for mode in 0..3 {
            let par = hooi::ttmc::ttmc_mode(&tensor, sym.mode(mode), &factors, mode);
            let seq = hooi::ttmc::ttmc_mode_sequential(&tensor, sym.mode(mode), &factors, mode);
            prop_assert!(par.frobenius_distance(&seq) < 1e-9 * seq.frobenius_norm().max(1.0));
        }
    }

    #[test]
    fn distributed_ttmc_invariant_under_partitioning(
        tensor in small_tensor_strategy(),
        num_ranks in 2usize..6,
        seed in 0u64..100,
    ) {
        let factors: Vec<Matrix> = tensor
            .dims()
            .iter()
            .enumerate()
            .map(|(m, &d)| Matrix::random(d, 2, seed + m as u64))
            .collect();
        let sym = hooi::symbolic::SymbolicTtmc::build(&tensor);
        let shared = hooi::ttmc::ttmc_mode(&tensor, sym.mode(0), &factors, 0);
        for grain in [Grain::Fine, Grain::Coarse] {
            let config = SimConfig::new(num_ranks, grain, PartitionMethod::Random, vec![2, 2, 2]);
            let setup = DistributedSetup::build(&tensor, &config);
            let dist = distsim::exec::distributed_ttmc(&tensor, &setup, &sym, &factors, 0);
            prop_assert!(dist.frobenius_distance(&shared) < 1e-9 * shared.frobenius_norm().max(1.0));
        }
    }

    #[test]
    fn cutsize_zero_iff_single_part_and_bounded_by_pins(
        tensor in small_tensor_strategy(),
        num_parts in 2usize..6,
        seed in 0u64..100,
    ) {
        let h = fine_grain_hypergraph(&tensor);
        let single = partition::random_partition(h.num_vertices(), 1, seed);
        prop_assert_eq!(h.connectivity_cutsize(&single.parts, 1), 0);
        let multi = partition::random_partition(h.num_vertices(), num_parts, seed);
        let cut = h.connectivity_cutsize(&multi.parts, num_parts);
        prop_assert!(cut as usize <= h.num_pins());
    }

    #[test]
    fn partition_refinement_never_hurts(
        tensor in small_tensor_strategy(),
        num_parts in 2usize..5,
        seed in 0u64..100,
    ) {
        let h = fine_grain_hypergraph(&tensor);
        let mut p = partition::random_partition(h.num_vertices(), num_parts, seed);
        let before = h.connectivity_cutsize(&p.parts, num_parts);
        partition::refine_partition(&h, &mut p, 0.2, 2);
        let after = h.connectivity_cutsize(&p.parts, num_parts);
        prop_assert!(after <= before);
    }

    #[test]
    fn accumulate_scaled_kron_matches_materialized_product(
        lens in (1usize..5, 1usize..5, 1usize..5),
        alpha in (0u64..2000).prop_map(|n| n as f64 / 100.0 - 10.0),
        seed in 0u64..1000,
    ) {
        // acc += alpha * (⊗ rows) must agree with materializing the full
        // Kronecker product first, for 1, 2 and 3 factor rows (the direct
        // 1/2-factor fast paths and the scratch-buffer fallback).
        let (l1, l2, l3) = lens;
        let source = Matrix::random(3, l1.max(l2).max(l3), seed);
        let rows_storage: Vec<Vec<f64>> = [l1, l2, l3]
            .iter()
            .enumerate()
            .map(|(i, &l)| source.row(i)[..l].to_vec())
            .collect();
        for take in 1..=3 {
            let rows: Vec<&[f64]> = rows_storage[..take].iter().map(|r| r.as_slice()).collect();
            let len: usize = rows.iter().map(|r| r.len()).product();
            let mut reference = vec![0.0; len];
            sptensor::kron::kron_rows(&rows, &mut reference);
            let mut acc = vec![1.5; len];
            let mut scratch = vec![0.0; len];
            sptensor::kron::accumulate_scaled_kron(alpha, &rows, &mut acc, &mut scratch);
            for (a, r) in acc.iter().zip(reference.iter()) {
                prop_assert!((a - (1.5 + alpha * r)).abs() < 1e-12,
                    "{take} factors: {a} vs {}", 1.5 + alpha * r);
            }
        }
    }

    #[test]
    fn ttmc_result_width_matches_factor_columns(
        ranks in (1usize..5, 1usize..5, 1usize..5, 1usize..5),
    ) {
        let (r1, r2, r3, r4) = ranks;
        let factors = vec![
            Matrix::zeros(3, r1),
            Matrix::zeros(3, r2),
            Matrix::zeros(3, r3),
            Matrix::zeros(3, r4),
        ];
        let all: usize = r1 * r2 * r3 * r4;
        for mode in 0..4 {
            let width = hooi::ttmc::ttmc_result_width(&factors, mode);
            prop_assert_eq!(width, all / factors[mode].ncols());
        }
    }

    #[test]
    fn compact_ttmc_rows_equal_dense_reference(
        tensor in (
            2usize..6,
            2usize..6,
            2usize..6,
            3usize..25,
            0u64..500,
        ).prop_map(|(d1, d2, d3, nnz, seed)| random_tensor(&[d1, d2, d3], nnz, seed)),
        rank in 1usize..4,
    ) {
        // Every row of the compact TTMc result must equal the corresponding
        // row of the dense reference `X ×_{t≠n} U_tᵀ` unfolding, and rows
        // absent from the compact form must be zero in the reference.
        let factors: Vec<Matrix> = tensor
            .dims()
            .iter()
            .enumerate()
            .map(|(m, &d)| Matrix::random(d, rank, m as u64 + 11))
            .collect();
        let sym = hooi::symbolic::SymbolicTtmc::build(&tensor);
        for mode in 0..3 {
            let compact = hooi::ttmc::ttmc_mode(&tensor, sym.mode(mode), &factors, mode);
            let reference = hooi::ttmc::ttmc_dense_reference(&tensor, &factors, mode);
            prop_assert_eq!(compact.ncols(), reference.ncols());
            let tol = 1e-9 * reference.frobenius_norm().max(1.0);
            let mut covered = vec![false; tensor.dims()[mode]];
            for (p, &i) in sym.mode(mode).rows.iter().enumerate() {
                covered[i] = true;
                for (a, b) in compact.row(p).iter().zip(reference.row(i)) {
                    prop_assert!((a - b).abs() < tol, "mode {mode} row {i}: {a} vs {b}");
                }
            }
            for (i, was_covered) in covered.iter().enumerate() {
                if !was_covered {
                    for &v in reference.row(i) {
                        prop_assert!(v.abs() < tol, "empty slice {i} has nonzero reference");
                    }
                }
            }
        }
    }

    #[test]
    fn planned_session_solves_are_deterministic_and_reuse_symbolic(
        tensor in small_tensor_strategy(),
        rank in 1usize..4,
    ) {
        // Planning once and solving twice with the same configuration must
        // yield identical factors, fits and core — workspace reuse may not
        // leak state between solves — and the second solve must report zero
        // symbolic time, because the plan's analysis is reused, not redone.
        let config = TuckerConfig::new(vec![rank; 3]).max_iterations(3).seed(7);
        let mut solver = TuckerSolver::plan(&tensor, PlanOptions::new().num_threads(1)).unwrap();
        let first = solver.solve(&config).unwrap();
        let second = solver.solve(&config).unwrap();
        prop_assert_eq!(&first.fits, &second.fits);
        prop_assert_eq!(&first.factors, &second.factors);
        prop_assert_eq!(first.core.as_slice(), second.core.as_slice());
        prop_assert!(first.timings.symbolic == solver.symbolic_time());
        prop_assert!(second.timings.symbolic == std::time::Duration::ZERO);
    }

    #[test]
    fn fit_norm_identity_for_hooi_output(
        tensor in small_tensor_strategy(),
    ) {
        // For the factors/core produced by HOOI (orthonormal columns), the
        // norm-based fit must agree with the exact dense reconstruction
        // error on small tensors.
        let config = TuckerConfig::new(vec![2, 2, 2]).max_iterations(2).seed(3);
        let result = tucker_hooi(&tensor, &config).unwrap();
        let exact = hooi::fit::full_relative_error(&tensor, &result.core, &result.factors, 1_000_000);
        let from_norms = 1.0 - result.final_fit();
        prop_assert!((exact - from_norms).abs() < 1e-6,
            "exact {} vs norm-based {}", exact, from_norms);
    }
}
