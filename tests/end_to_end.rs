//! Cross-crate integration tests: the full pipeline from data generation
//! through shared-memory HOOI, partitioning, distributed simulation and the
//! MET baseline.

use tucker_repro::prelude::*;

#[test]
fn full_pipeline_on_profile_tensor() {
    // Generate a scaled Netflix-profile tensor, decompose it, and check the
    // structural invariants of the result.
    let profile = DatasetProfile::new(ProfileName::Netflix);
    let tensor = profile.generate(8_000, 1);
    let config = TuckerConfig::new(vec![6, 6, 6]).max_iterations(4).seed(2);
    let result = tucker_hooi(&tensor, &config).unwrap();

    assert_eq!(result.core.dims(), &[6, 6, 6]);
    assert_eq!(result.factors.len(), 3);
    for (u, &dim) in result.factors.iter().zip(tensor.dims()) {
        assert_eq!(u.nrows(), dim);
        assert_eq!(u.ncols(), 6);
        assert!(linalg::qr::orthogonality_error(u) < 1e-5);
    }
    // Fit is monotone across iterations and in (0, 1].
    for w in result.fits.windows(2) {
        assert!(w[1] >= w[0] - 1e-8);
    }
    assert!(result.final_fit() > 0.0 && result.final_fit() <= 1.0);
}

#[test]
fn distributed_simulation_matches_shared_memory_on_all_configurations() {
    let tensor = random_tensor(&[30, 25, 20], 1_200, 3);
    let ranks = vec![3, 3, 3];
    let tucker = TuckerConfig::new(ranks.clone()).max_iterations(2).seed(5);
    let shared = tucker_hooi(&tensor, &tucker).unwrap();

    for (grain, method) in [
        (Grain::Fine, PartitionMethod::Hypergraph),
        (Grain::Fine, PartitionMethod::Random),
        (Grain::Coarse, PartitionMethod::Hypergraph),
        (Grain::Coarse, PartitionMethod::Block),
    ] {
        let config = SimConfig::new(6, grain, method, ranks.clone());
        let setup = DistributedSetup::build(&tensor, &config);
        let dist = distsim::exec::distributed_hooi(&tensor, &setup, &tucker).unwrap();
        assert!(
            (dist.final_fit() - shared.final_fit()).abs() < 1e-8,
            "{grain:?}/{method:?}: distributed fit {} differs from shared {}",
            dist.final_fit(),
            shared.final_fit()
        );
    }
}

#[test]
fn hypergraph_partitioning_reduces_simulated_time_and_volume() {
    let profile = DatasetProfile::new(ProfileName::Flickr);
    let tensor = profile.generate(10_000, 9);
    let ranks = profile.paper_ranks().to_vec();
    let machine = MachineModel::bluegene_q();

    let run = |method: PartitionMethod| {
        let config = SimConfig::new(16, Grain::Fine, method, ranks.clone());
        let setup = DistributedSetup::build(&tensor, &config);
        let cost = simulate_iteration(&tensor, &setup, &machine, 20);
        (cost.total_seconds(), cost.stats.total_comm_volume())
    };
    let (t_hp, v_hp) = run(PartitionMethod::Hypergraph);
    let (t_rd, v_rd) = run(PartitionMethod::Random);
    assert!(
        v_hp < v_rd,
        "hypergraph comm volume {v_hp} not below random {v_rd}"
    );
    assert!(
        t_hp <= t_rd,
        "hypergraph simulated time {t_hp} not below random {t_rd}"
    );
}

#[test]
fn met_baseline_agrees_with_hooi() {
    let tensor = random_tensor(&[18, 15, 12], 700, 7);
    let config = TuckerConfig::new(vec![3, 3, 3]).max_iterations(3).seed(9);
    let ours = tucker_hooi(&tensor, &config).unwrap();
    let met = hooi::met::tucker_met(&tensor, &config).unwrap();
    assert!((ours.final_fit() - met.final_fit()).abs() < 1e-3);
}

#[test]
fn tensor_io_roundtrip_preserves_decomposition_input() {
    let tensor = random_tensor(&[15, 15, 15], 300, 11);
    let path = std::env::temp_dir().join("tucker_repro_integration.tns");
    write_tns_file(&tensor, &path).unwrap();
    let reloaded = read_tns_file(&path, Some(tensor.dims().to_vec())).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(reloaded.nnz(), tensor.nnz());

    let config = TuckerConfig::new(vec![2, 2, 2]).max_iterations(2).seed(1);
    let a = tucker_hooi(&tensor, &config).unwrap();
    let b = tucker_hooi(&reloaded, &config).unwrap();
    assert!((a.final_fit() - b.final_fit()).abs() < 1e-9);
}

#[test]
fn solver_session_serves_a_batch_across_the_whole_pipeline() {
    // One plan, many configurations — the service-scale shape — checked
    // end to end against the one-shot entry point.
    let profile = DatasetProfile::new(ProfileName::Netflix);
    let tensor = profile.generate(6_000, 3);
    let mut solver = TuckerSolver::plan(&tensor, PlanOptions::new().num_threads(1)).unwrap();

    let configs: Vec<TuckerConfig> = [2usize, 4, 6]
        .iter()
        .map(|&r| {
            TuckerConfig::new(vec![r; 3])
                .max_iterations(3)
                .seed(r as u64)
        })
        .collect();
    let batch = solver.solve_many(&configs).unwrap();
    assert_eq!(batch.len(), 3);
    for (result, config) in batch.iter().zip(configs.iter()) {
        let one_shot = tucker_hooi(&tensor, config).unwrap();
        assert_eq!(result.fits, one_shot.fits, "ranks {:?}", config.ranks);
        assert_eq!(result.factors, one_shot.factors);
    }
    // Larger ranks explain at least as much of the tensor.
    assert!(batch[2].final_fit() >= batch[0].final_fit() - 1e-9);
    // Only the first solve of the session pays the symbolic cost.
    assert!(batch[1].timings.symbolic.is_zero());
    assert!(batch[2].timings.symbolic.is_zero());
}

#[test]
fn solver_errors_are_values_across_the_facade() {
    let empty = SparseTensor::new(vec![5, 5, 5]);
    assert_eq!(
        TuckerSolver::plan(&empty, PlanOptions::new()).unwrap_err(),
        TuckerError::EmptyTensor
    );
    let tensor = random_tensor(&[10, 10, 10], 200, 7);
    let mut solver = TuckerSolver::plan(&tensor, PlanOptions::new().num_threads(1)).unwrap();
    assert!(matches!(
        solver.solve(&TuckerConfig::new(vec![2, 2])),
        Err(TuckerError::OrderMismatch { .. })
    ));
    assert!(matches!(
        solver.solve(&TuckerConfig::new(vec![0, 2, 2])),
        Err(TuckerError::ZeroRank { mode: 0 })
    ));
}

#[test]
fn observer_can_budget_iterations_from_outside() {
    let tensor = random_tensor(&[20, 20, 20], 1_000, 5);
    let mut solver = TuckerSolver::plan(&tensor, PlanOptions::new().num_threads(1)).unwrap();
    let config = TuckerConfig::new(vec![3, 3, 3])
        .max_iterations(25)
        .fit_tolerance(-1.0);
    let mut fits_seen = Vec::new();
    let result = solver
        .solve_with_observer(&config, &mut |r: &IterationReport| {
            fits_seen.push(r.fit);
            if fits_seen.len() >= 4 {
                IterationControl::Stop
            } else {
                IterationControl::Continue
            }
        })
        .unwrap();
    assert_eq!(result.iterations, 4);
    assert_eq!(fits_seen, result.fits);
}

#[test]
fn four_mode_profile_pipeline() {
    let profile = DatasetProfile::new(ProfileName::Delicious);
    let tensor = profile.generate(5_000, 21);
    assert_eq!(tensor.order(), 4);
    let config = TuckerConfig::new(vec![3, 3, 3, 3])
        .max_iterations(2)
        .seed(6);
    let result = tucker_hooi(&tensor, &config).unwrap();
    assert_eq!(result.core.dims(), &[3, 3, 3, 3]);

    // And a 4-mode distributed simulation.
    let sim = SimConfig::new(
        4,
        Grain::Fine,
        PartitionMethod::Hypergraph,
        vec![3, 3, 3, 3],
    );
    let setup = DistributedSetup::build(&tensor, &sim);
    let cost = simulate_iteration(&tensor, &setup, &MachineModel::bluegene_q(), 20);
    assert!(cost.total_seconds() > 0.0);
    assert_eq!(cost.per_mode.len(), 4);
}
